//! Plain-text rendering of ECR schemas.
//!
//! The paper presents schemas as boxes-and-diamonds diagrams (Figures 2–5).
//! This renderer produces the equivalent textual diagram: entity sets as
//! roots, categories indented beneath their parents (the IS-A lattice), and
//! relationship sets with their legs and structural constraints. The
//! `figures` binary in `sit-bench` uses it to regenerate the paper's
//! figures.

use std::fmt::Write as _;

use crate::graph::IsaGraph;
use crate::ids::ObjectId;
use crate::schema::Schema;

/// Render the schema as an indented text diagram.
pub fn render(schema: &Schema) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "schema {}", schema.name());
    let graph = IsaGraph::of(schema);

    let _ = writeln!(out, "  object classes:");
    let mut roots = graph.roots();
    roots.sort_by_key(|o| o.index());
    for root in roots {
        render_object(schema, &graph, root, 2, &mut out);
    }

    if schema.relationship_count() > 0 {
        let _ = writeln!(out, "  relationship sets:");
        for (_, rel) in schema.relationships() {
            let legs: Vec<String> = rel
                .participants
                .iter()
                .map(|p| {
                    let role = p
                        .role
                        .as_deref()
                        .map(|r| format!(" as {r}"))
                        .unwrap_or_default();
                    format!("{} {}{}", schema.object(p.object).name, p.cardinality, role)
                })
                .collect();
            let _ = writeln!(out, "    <{}> -- {}", rel.name, legs.join(" -- "));
            for a in &rel.attributes {
                let key = if a.is_key() { " [key]" } else { "" };
                let _ = writeln!(out, "        . {}: {}{}", a.name, a.domain.tag(), key);
            }
        }
    }
    out
}

fn render_object(
    schema: &Schema,
    graph: &IsaGraph,
    o: ObjectId,
    depth: usize,
    out: &mut String,
) {
    let obj = schema.object(o);
    let pad = "  ".repeat(depth);
    let tag = if obj.kind.is_category() {
        "category"
    } else {
        "entity"
    };
    let _ = writeln!(out, "{pad}[{}] ({tag})", obj.name);
    for a in &obj.attributes {
        let key = if a.is_key() { " [key]" } else { "" };
        let _ = writeln!(out, "{pad}    . {}: {}{}", a.name, a.domain.tag(), key);
    }
    let mut kids: Vec<ObjectId> = graph.children(o).to_vec();
    kids.sort_by_key(|c| c.index());
    for child in kids {
        // A multi-parent category renders under each parent; mark repeats.
        render_object(schema, graph, child, depth + 1, out);
    }
}

/// Render the schema as a Graphviz DOT graph — the "graphical interface
/// for displaying and browsing schemas [Larson 86]" the paper's
/// future-work section asks for, in the form every modern toolchain can
/// draw. Entity sets are boxes, categories are rounded boxes linked to
/// their parents with `isa` edges, relationship sets are diamonds with
/// cardinality-labelled edges (the classic ER diagram conventions the
/// paper's figures use).
pub fn to_dot(schema: &Schema) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", schema.name());
    let _ = writeln!(out, "  rankdir=BT;");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");
    for (id, obj) in schema.objects() {
        let (shape, style) = if obj.kind.is_category() {
            ("box", ", style=rounded")
        } else {
            ("box", "")
        };
        let attrs: Vec<String> = obj
            .attributes
            .iter()
            .map(|a| {
                if a.is_key() {
                    format!("<u>{}</u>", a.name)
                } else {
                    a.name.clone()
                }
            })
            .collect();
        let label = if attrs.is_empty() {
            format!("<<b>{}</b>>", obj.name)
        } else {
            format!("<<b>{}</b><br/>{}>", obj.name, attrs.join("<br/>"))
        };
        let _ = writeln!(out, "  o{} [shape={shape}{style}, label={label}];", id.index());
    }
    for (id, obj) in schema.objects() {
        for &p in obj.parents() {
            let _ = writeln!(
                out,
                "  o{} -> o{} [label=\"isa\", arrowhead=onormal];",
                id.index(),
                p.index()
            );
        }
    }
    for (rid, rel) in schema.relationships() {
        let _ = writeln!(
            out,
            "  r{} [shape=diamond, label=\"{}\"];",
            rid.index(),
            rel.name
        );
        for p in &rel.participants {
            let role = p
                .role
                .as_deref()
                .map(|r| format!("{r} "))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "  r{} -> o{} [label=\"{role}{}\", dir=none];",
                rid.index(),
                p.object.index(),
                p.cardinality
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// One-line summary used by list screens: `Name (e, 3 attrs)`.
pub fn summary_line(schema: &Schema, o: ObjectId) -> String {
    let obj = schema.object(o);
    format!(
        "{} ({}, {} attrs)",
        obj.name,
        obj.kind.tag(),
        obj.attr_count()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::relationship::Cardinality;
    use crate::schema::SchemaBuilder;

    #[test]
    fn render_shows_hierarchy_and_relationships() {
        let mut b = SchemaBuilder::new("uni");
        let student = b
            .entity_set("Student")
            .attr_key("Name", Domain::Char)
            .finish();
        let dept = b.entity_set("Department").finish();
        b.category("Grad_student", vec![student])
            .attr("Support_type", Domain::Char)
            .finish();
        b.relationship("Majors")
            .participant(student, Cardinality::AT_MOST_ONE)
            .participant(dept, Cardinality::MANY)
            .finish();
        let s = b.build().unwrap();
        let text = render(&s);
        assert!(text.contains("schema uni"), "{text}");
        assert!(text.contains("[Student] (entity)"), "{text}");
        assert!(text.contains("[Grad_student] (category)"), "{text}");
        assert!(text.contains(". Name: char [key]"), "{text}");
        assert!(
            text.contains("<Majors> -- Student (0,1) -- Department (0,n)"),
            "{text}"
        );
        // Category is indented deeper than its parent entity.
        let student_line = text.lines().position(|l| l.contains("[Student]")).unwrap();
        let grad_line = text
            .lines()
            .position(|l| l.contains("[Grad_student]"))
            .unwrap();
        assert!(grad_line > student_line);
        let indent = |i: usize| {
            text.lines()
                .nth(i)
                .unwrap()
                .chars()
                .take_while(|c| *c == ' ')
                .count()
        };
        assert!(indent(grad_line) > indent(student_line));
    }

    #[test]
    fn dot_export_contains_nodes_edges_and_cardinalities() {
        let s = crate::fixtures::sc2();
        let dot = to_dot(&s);
        assert!(dot.starts_with("digraph \"sc2\""), "{dot}");
        assert!(dot.contains("<b>Grad_student</b>"), "{dot}");
        assert!(dot.contains("<u>Name</u>"), "key underlined: {dot}");
        assert!(dot.contains("shape=diamond, label=\"Works\""), "{dot}");
        assert!(dot.contains("(1,1)"), "cardinality labels: {dot}");
        // Categories link to parents with isa edges.
        let s4 = crate::fixtures::sc4();
        let dot4 = to_dot(&s4);
        assert!(dot4.contains("label=\"isa\""), "{dot4}");
        assert!(dot4.contains("style=rounded"), "{dot4}");
    }

    #[test]
    fn summary_line_format() {
        let mut b = SchemaBuilder::new("x");
        let e = b
            .entity_set("Student")
            .attr("Name", Domain::Char)
            .attr("GPA", Domain::Real)
            .finish();
        let s = b.build().unwrap();
        assert_eq!(summary_line(&s, e), "Student (e, 2 attrs)");
    }
}
