//! Property-based tests of the ECR substrate: the cardinality algebra and
//! the IS-A graph invariants.

use proptest::prelude::*;
use sit_ecr::{Cardinality, Domain, IsaGraph, SchemaBuilder};

fn arb_card() -> impl Strategy<Value = Cardinality> {
    (0u32..5, prop::option::of(1u32..8)).prop_map(|(min, max)| {
        let max = max.map(|m| m.max(min).max(1));
        Cardinality::new(min, max)
    })
}

proptest! {
    /// `widen` is commutative, associative, idempotent, and its result
    /// subsumes both inputs.
    #[test]
    fn widen_is_a_join(a in arb_card(), b in arb_card(), c in arb_card()) {
        prop_assert!(a.is_valid() && b.is_valid());
        prop_assert_eq!(a.widen(&b), b.widen(&a));
        prop_assert_eq!(a.widen(&a), a);
        prop_assert_eq!(a.widen(&b).widen(&c), a.widen(&b.widen(&c)));
        let w = a.widen(&b);
        prop_assert!(w.is_valid());
        prop_assert!(w.subsumes(&a), "{w} subsumes {a}");
        prop_assert!(w.subsumes(&b), "{w} subsumes {b}");
    }

    /// `subsumes` is a partial order consistent with `widen`.
    #[test]
    fn subsumption_partial_order(a in arb_card(), b in arb_card()) {
        prop_assert!(a.subsumes(&a), "reflexive");
        if a.subsumes(&b) && b.subsumes(&a) {
            prop_assert_eq!(a, b, "antisymmetric");
        }
        if a.subsumes(&b) {
            prop_assert_eq!(a.widen(&b), a, "join with a subsumed value is identity");
        }
    }

    /// Cardinality display round-trips through the DDL.
    #[test]
    fn cardinality_roundtrips_through_ddl(card in arb_card()) {
        let mut b = SchemaBuilder::new("c");
        let x = b.entity_set("X").attr_key("id", Domain::Int).finish();
        let y = b.entity_set("Y").finish();
        b.relationship("R")
            .participant(x, card)
            .participant(y, Cardinality::MANY)
            .finish();
        let s = b.build().unwrap();
        let text = sit_ecr::ddl::print(&s);
        let back = sit_ecr::ddl::parse(&text).unwrap();
        let r = back.relationship(back.rel_by_name("R").unwrap());
        prop_assert_eq!(r.participants[0].cardinality, card);
    }

    /// Chains of categories always topo-sort, and descendants/ancestors
    /// are inverse views.
    #[test]
    fn isa_graph_invariants(depth in 1usize..8, fanout in 1usize..3) {
        let mut b = SchemaBuilder::new("g");
        b.entity_set("Root").finish();
        let mut prev = vec!["Root".to_owned()];
        let mut all = vec!["Root".to_owned()];
        for d in 0..depth {
            let mut next = Vec::new();
            for (i, parent) in prev.iter().enumerate() {
                for f in 0..fanout {
                    let name = format!("C{d}_{i}_{f}");
                    b.category_of(name.clone(), &[parent]).unwrap().finish();
                    next.push(name.clone());
                    all.push(name);
                }
            }
            prev = next;
        }
        let s = b.build().unwrap();
        let g = IsaGraph::of(&s);
        prop_assert!(g.find_cycle().is_none());
        let order = g.topo_order().unwrap();
        prop_assert_eq!(order.len(), all.len());
        // Ancestor/descendant symmetry on a few pairs.
        for name in &all {
            let id = s.object_by_name(name).unwrap();
            for anc in g.ancestors(id) {
                prop_assert!(g.descendants(anc).contains(&id));
            }
        }
        // Roots are exactly the entity sets.
        prop_assert_eq!(g.roots().len(), 1);
    }
}
