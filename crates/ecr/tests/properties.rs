//! Property-based tests of the ECR substrate: the cardinality algebra and
//! the IS-A graph invariants. Driven by the seeded in-tree runner
//! (`sit_prng::prop`), so every run executes the same cases and a failure
//! reports its reproducing seed.

use sit_ecr::{Cardinality, Domain, IsaGraph, SchemaBuilder};
use sit_prng::{prop, prop_assert, prop_assert_eq, Xoshiro256pp};

fn arb_card(rng: &mut Xoshiro256pp) -> Cardinality {
    let min = rng.gen_range(0u32..5);
    let max = if rng.gen_bool(0.5) {
        None
    } else {
        Some(rng.gen_range(1u32..8).max(min).max(1))
    };
    Cardinality::new(min, max)
}

/// `widen` is commutative, associative, idempotent, and its result
/// subsumes both inputs.
#[test]
fn widen_is_a_join() {
    prop::check("widen_is_a_join", |rng| {
        let (a, b, c) = (arb_card(rng), arb_card(rng), arb_card(rng));
        prop_assert!(a.is_valid() && b.is_valid());
        prop_assert_eq!(a.widen(&b), b.widen(&a));
        prop_assert_eq!(a.widen(&a), a);
        prop_assert_eq!(a.widen(&b).widen(&c), a.widen(&b.widen(&c)));
        let w = a.widen(&b);
        prop_assert!(w.is_valid());
        prop_assert!(w.subsumes(&a), "{w} subsumes {a}");
        prop_assert!(w.subsumes(&b), "{w} subsumes {b}");
        Ok(())
    });
}

/// `subsumes` is a partial order consistent with `widen`.
#[test]
fn subsumption_partial_order() {
    prop::check("subsumption_partial_order", |rng| {
        let (a, b) = (arb_card(rng), arb_card(rng));
        prop_assert!(a.subsumes(&a), "reflexive");
        if a.subsumes(&b) && b.subsumes(&a) {
            prop_assert_eq!(a, b, "antisymmetric");
        }
        if a.subsumes(&b) {
            prop_assert_eq!(a.widen(&b), a, "join with a subsumed value is identity");
        }
        Ok(())
    });
}

/// Cardinality display round-trips through the DDL.
#[test]
fn cardinality_roundtrips_through_ddl() {
    prop::check("cardinality_roundtrips_through_ddl", |rng| {
        let card = arb_card(rng);
        let mut b = SchemaBuilder::new("c");
        let x = b.entity_set("X").attr_key("id", Domain::Int).finish();
        let y = b.entity_set("Y").finish();
        b.relationship("R")
            .participant(x, card)
            .participant(y, Cardinality::MANY)
            .finish();
        let s = b.build().unwrap();
        let text = sit_ecr::ddl::print(&s);
        let back = sit_ecr::ddl::parse(&text).unwrap();
        let r = back.relationship(back.rel_by_name("R").unwrap());
        prop_assert_eq!(r.participants[0].cardinality, card);
        Ok(())
    });
}

/// Chains of categories always topo-sort, and descendants/ancestors
/// are inverse views.
#[test]
fn isa_graph_invariants() {
    prop::check("isa_graph_invariants", |rng| {
        let depth = rng.gen_range(1usize..8);
        let fanout = rng.gen_range(1usize..3);
        let mut b = SchemaBuilder::new("g");
        b.entity_set("Root").finish();
        let mut prev = vec!["Root".to_owned()];
        let mut all = vec!["Root".to_owned()];
        for d in 0..depth {
            let mut next = Vec::new();
            for (i, parent) in prev.iter().enumerate() {
                for f in 0..fanout {
                    let name = format!("C{d}_{i}_{f}");
                    b.category_of(name.clone(), &[parent]).unwrap().finish();
                    next.push(name.clone());
                    all.push(name);
                }
            }
            prev = next;
        }
        let s = b.build().unwrap();
        let g = IsaGraph::of(&s);
        prop_assert!(g.find_cycle().is_none());
        let order = g.topo_order().unwrap();
        prop_assert_eq!(order.len(), all.len());
        // Ancestor/descendant symmetry on a few pairs.
        for name in &all {
            let id = s.object_by_name(name).unwrap();
            for anc in g.ancestors(id) {
                prop_assert!(g.descendants(anc).contains(&id));
            }
        }
        // Roots are exactly the entity sets.
        prop_assert_eq!(g.roots().len(), 1);
        Ok(())
    });
}
