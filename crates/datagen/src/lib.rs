#![warn(missing_docs)]
//! # sit-datagen — synthetic schema workloads and DDA oracles
//!
//! The paper evaluated its tool interactively on real Honeywell schemas
//! with a live database designer/administrator (DDA) at the terminal.
//! Neither is available to a reproduction, so this crate substitutes both
//! (see DESIGN.md, substitution table):
//!
//! * [`generator`] produces *pairs and families of component schemas with
//!   known ground truth*: a pool of domain concepts ([`concepts`]) is
//!   sampled with a controlled overlap fraction, and each schema renders
//!   its concepts through naming/attribute perturbations ([`perturb`]) —
//!   synonyms, abbreviations, dropped and extra attributes,
//!   specializations. The [`ground_truth::GroundTruth`] records which
//!   object classes and attributes truly correspond and with which
//!   assertion.
//! * [`oracle`] replaces the live DDA: a [`oracle::DdaOracle`] answers the
//!   tool's questions (is this attribute pair equivalent? what assertion
//!   holds for this object pair?). The [`oracle::GroundTruthOracle`]
//!   answers perfectly; [`oracle::NoisyOracle`] flips answers with a
//!   configured error rate, modelling a fallible designer.
//!
//! Together they let the benchmarks measure exactly the things the paper
//! claims qualitatively: how many questions the tool asks under different
//! strategies, and how well the ranking heuristic surfaces true
//! correspondences.

pub mod concepts;
pub mod generator;
pub mod ground_truth;
pub mod oracle;
pub mod perturb;

pub use concepts::{Concept, ConceptAttr, ConceptPool};
pub use generator::{GeneratedPair, GeneratorConfig, SchemaFamily};
pub use ground_truth::{GroundTruth, TrueAssertion};
pub use oracle::{DdaOracle, GroundTruthOracle, NoisyOracle, ScriptedOracle};
pub use perturb::Perturber;
