//! Schema-pair and schema-family generators with ground truth.
//!
//! [`GeneratorConfig::generate_pair`] builds two component schemas that
//! share a controlled fraction of underlying concepts. Shared concepts are
//! rendered in both schemas (with independent perturbations), and each
//! shared concept is assigned a *true relation*:
//!
//! * most render plainly in both → **equals**;
//! * a configured fraction render in the second schema as a
//!   specialization (`Senior_…`) → the first schema's class **contains**
//!   the second's;
//! * another fraction render as an overlapping variant (`Part_time_…`) →
//!   **may be** (overlap).
//!
//! Unshared concepts are unrelated across schemas (implicitly disjoint and
//! non-integrable). The returned [`GroundTruth`] lists every true object
//! assertion and every true attribute equivalence, which the oracles
//! answer from and the benchmarks score against.

use sit_prng::Xoshiro256pp;

use sit_core::assertion::Assertion;
use sit_ecr::{Cardinality, Schema, SchemaBuilder};

use crate::concepts::ConceptPool;
use crate::ground_truth::{GroundTruth, TrueAssertion};
use crate::perturb::{Perturber, Rendering};

/// Knobs of the workload generator.
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    /// RNG seed — everything is deterministic per seed.
    pub seed: u64,
    /// Object classes per generated schema.
    pub objects_per_schema: usize,
    /// Fraction of each schema's concepts shared with the other
    /// (`0.0..=1.0`).
    pub overlap: f64,
    /// Of the shared concepts, the fraction rendered as a specialization
    /// in the second schema (true assertion: *contains*).
    pub contained_frac: f64,
    /// Of the shared concepts, the fraction rendered as an overlapping
    /// variant (true assertion: *may be*).
    pub mayby_frac: f64,
    /// Of the plainly shared (*equals*) concepts, the fraction that also
    /// sprout a specialized *category* in the second schema. Those
    /// categories make the closure engine earn its keep: the relation of
    /// `(A.X, B.Senior_X)` is derivable from `A.X ≡ B.X` plus the
    /// intra-schema edge `B.Senior_X ⊂ B.X`, so a ranked-with-closure DDA
    /// is never asked about it.
    pub category_frac: f64,
    /// Naming/attribute perturbations.
    pub perturber: Perturber,
    /// Binary relationship sets generated within each schema.
    pub relationships_per_schema: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            seed: 0xEC12,
            objects_per_schema: 8,
            overlap: 0.5,
            contained_frac: 0.2,
            mayby_frac: 0.1,
            category_frac: 0.0,
            perturber: Perturber::default(),
            relationships_per_schema: 3,
        }
    }
}

/// A generated pair with its truth.
#[derive(Clone, Debug)]
pub struct GeneratedPair {
    /// First component schema.
    pub a: Schema,
    /// Second component schema.
    pub b: Schema,
    /// What truly corresponds.
    pub truth: GroundTruth,
}

/// A generated family of `n` schemas for n-ary workloads, with pairwise
/// truth between consecutive and non-consecutive members alike.
#[derive(Clone, Debug)]
pub struct SchemaFamily {
    /// The component schemas.
    pub schemas: Vec<Schema>,
    /// `truths[i][j]` (i < j): ground truth between schemas `i` and `j`.
    pub truths: Vec<Vec<GroundTruth>>,
}

impl GeneratorConfig {
    /// Generate one schema pair plus ground truth.
    pub fn generate_pair(&self) -> GeneratedPair {
        let mut rng = Xoshiro256pp::seed_from_u64(self.seed);
        let mut pool = ConceptPool::builtin();
        let shared = ((self.objects_per_schema as f64) * self.overlap).round() as usize;
        let shared = shared.min(self.objects_per_schema);
        let unique = self.objects_per_schema - shared;
        pool.ensure(shared + 2 * unique);

        // Concept indexes: shared, then A's uniques, then B's uniques.
        let a_concepts: Vec<usize> = (0..shared).chain(shared..shared + unique).collect();
        let b_concepts: Vec<usize> = (0..shared)
            .chain(shared + unique..shared + 2 * unique)
            .collect();

        let mut truth = GroundTruth::default();
        let mut builder_a = NamedBuilder::new("gen_a");
        let mut builder_b = NamedBuilder::new("gen_b");

        // Render A side first.
        let mut renderings_a: Vec<Rendering> = Vec::new();
        for &ci in &a_concepts {
            let r = self.perturber.render(pool.get(ci), &mut rng);
            renderings_a.push(r);
        }
        for r in &mut renderings_a {
            builder_a.add_object(r);
        }

        // Render B side with per-concept relation decisions for the shared
        // prefix.
        let mut renderings_b: Vec<Rendering> = Vec::new();
        let mut relations: Vec<Option<Assertion>> = Vec::new();
        for (pos, &ci) in b_concepts.iter().enumerate() {
            if pos < shared {
                let roll: f64 = rng.gen_f64();
                let (rendering, assertion) = if roll < self.contained_frac {
                    (
                        self.perturber
                            .render_specialization(pool.get(ci), "Senior", &mut rng),
                        Assertion::Contains, // A contains B
                    )
                } else if roll < self.contained_frac + self.mayby_frac {
                    (
                        self.perturber
                            .render_specialization(pool.get(ci), "Part_time", &mut rng),
                        Assertion::MayBe,
                    )
                } else {
                    (self.perturber.render(pool.get(ci), &mut rng), Assertion::Equal)
                };
                renderings_b.push(rendering);
                relations.push(Some(assertion));
            } else {
                renderings_b.push(self.perturber.render(pool.get(ci), &mut rng));
                relations.push(None);
            }
        }
        for r in &mut renderings_b {
            builder_b.add_object(r);
        }

        // In-place category specializations on the equals-shared prefix.
        let mut extra_truth: Vec<(usize, Rendering)> = Vec::new();
        for pos in 0..shared {
            if relations[pos] == Some(Assertion::Equal) && rng.gen_bool(self.category_frac) {
                let ci = b_concepts[pos];
                let cat = self
                    .perturber
                    .render_specialization(pool.get(ci), "Senior", &mut rng);
                extra_truth.push((pos, cat));
            }
        }
        for (pos, cat) in &mut extra_truth {
            let parent = renderings_b[*pos].name.clone();
            builder_b.add_category(cat, &parent);
        }

        // Ground truth from the shared prefix.
        for pos in 0..shared {
            let ra = &renderings_a[pos];
            let rb = &renderings_b[pos];
            let assertion = relations[pos].expect("shared prefix has relations");
            truth.assertions.push(TrueAssertion {
                a: ra.name.clone(),
                b: rb.name.clone(),
                assertion,
            });
            // Attribute truth: same prototype rendered on both sides.
            for aa in &ra.attrs {
                let Some(pa) = aa.proto else { continue };
                for ab in &rb.attrs {
                    if ab.proto == Some(pa) {
                        truth.attr_pairs.push((
                            ra.name.clone(),
                            aa.attr.name.clone(),
                            rb.name.clone(),
                            ab.attr.name.clone(),
                        ));
                    }
                }
            }
        }

        // Truth for the in-place categories: A's rendering contains them,
        // and their surviving prototype attributes correspond.
        for (pos, cat) in &extra_truth {
            let ra = &renderings_a[*pos];
            truth.assertions.push(TrueAssertion {
                a: ra.name.clone(),
                b: cat.name.clone(),
                assertion: Assertion::Contains,
            });
            for aa in &ra.attrs {
                let Some(pa) = aa.proto else { continue };
                for ab in &cat.attrs {
                    if ab.proto == Some(pa) {
                        truth.attr_pairs.push((
                            ra.name.clone(),
                            aa.attr.name.clone(),
                            cat.name.clone(),
                            ab.attr.name.clone(),
                        ));
                    }
                }
            }
        }

        // Intra-schema relationships.
        builder_a.add_relationships(self.relationships_per_schema, &mut rng);
        builder_b.add_relationships(self.relationships_per_schema, &mut rng);

        GeneratedPair {
            a: builder_a.build(),
            b: builder_b.build(),
            truth,
        }
    }

    /// Generate a family of `n` schemas sharing one concept core. Every
    /// schema renders shared concepts (related by *equals*) plus its own
    /// unique tail; pairwise ground truth is derived from concept
    /// identity. With `hetero`, schemas in the second half of the family
    /// share only half the core, making some pairs much more resemblant
    /// than others — the workload of the fold-order experiment.
    pub fn generate_family_with(&self, n: usize, hetero: bool) -> SchemaFamily {
        assert!(n >= 2);
        let mut rng = Xoshiro256pp::seed_from_u64(self.seed ^ 0xFA417);
        let mut pool = ConceptPool::builtin();
        let shared = ((self.objects_per_schema as f64) * self.overlap).round() as usize;
        let shared = shared.min(self.objects_per_schema);
        let shared_of = |s: usize| -> usize {
            if hetero && s >= n / 2 {
                shared / 2
            } else {
                shared
            }
        };
        pool.ensure(shared + n * self.objects_per_schema);

        let mut all_renderings: Vec<Vec<Rendering>> = Vec::with_capacity(n);
        let mut schemas = Vec::with_capacity(n);
        for s in 0..n {
            let mut builder = NamedBuilder::new(format!("fam_{s}"));
            let mut renderings = Vec::new();
            let s_shared = shared_of(s);
            for ci in 0..s_shared {
                renderings.push(self.perturber.render(pool.get(ci), &mut rng));
            }
            // Pad the schema back to full size with unique concepts.
            let fill = self.objects_per_schema - s_shared;
            for u in 0..fill {
                let ci = shared + s * self.objects_per_schema + u;
                renderings.push(self.perturber.render(pool.get(ci), &mut rng));
            }
            for r in &mut renderings {
                builder.add_object(r);
            }
            builder.add_relationships(self.relationships_per_schema, &mut rng);
            schemas.push(builder.build());
            all_renderings.push(renderings);
        }

        let mut truths: Vec<Vec<GroundTruth>> = vec![vec![GroundTruth::default(); n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let common = shared_of(i).min(shared_of(j));
                let mut gt = GroundTruth::default();
                for (ra, rb) in all_renderings[i][..common]
                    .iter()
                    .zip(&all_renderings[j][..common])
                {
                    gt.assertions.push(TrueAssertion {
                        a: ra.name.clone(),
                        b: rb.name.clone(),
                        assertion: Assertion::Equal,
                    });
                    for aa in &ra.attrs {
                        let Some(pa) = aa.proto else { continue };
                        for ab in &rb.attrs {
                            if ab.proto == Some(pa) {
                                gt.attr_pairs.push((
                                    ra.name.clone(),
                                    aa.attr.name.clone(),
                                    rb.name.clone(),
                                    ab.attr.name.clone(),
                                ));
                            }
                        }
                    }
                }
                truths[i][j] = gt;
            }
        }
        SchemaFamily { schemas, truths }
    }

    /// Homogeneous family: every schema shares the full core.
    pub fn generate_family(&self, n: usize) -> SchemaFamily {
        self.generate_family_with(n, false)
    }
}

/// Schema assembly with object-name uniquification (alternate-name
/// collisions get numeric suffixes, and the rendering is updated so
/// ground truth uses the final name) and attribute-name dedup per object.
struct NamedBuilder {
    builder: SchemaBuilder,
    used: Vec<String>,
}

impl NamedBuilder {
    fn new(name: impl Into<String>) -> Self {
        Self {
            builder: SchemaBuilder::new(name),
            used: Vec::new(),
        }
    }

    fn add_object(&mut self, r: &mut Rendering) {
        self.add_structure(r, None);
    }

    fn add_category(&mut self, r: &mut Rendering, parent: &str) {
        self.add_structure(r, Some(parent.to_owned()));
    }

    fn add_structure(&mut self, r: &mut Rendering, parent: Option<String>) {
        let mut name = r.name.clone();
        let mut n = 1;
        while self.used.contains(&name) {
            n += 1;
            name = format!("{}_{n}", r.name);
        }
        self.used.push(name.clone());
        r.name = name.clone();

        let mut ob = match parent {
            Some(p) => self
                .builder
                .category_of(name, &[p.as_str()])
                .expect("parent was added before its categories"),
            None => self.builder.entity_set(name),
        };
        let mut attr_names: Vec<String> = Vec::new();
        for ra in &mut r.attrs {
            let mut aname = ra.attr.name.clone();
            let mut k = 1;
            while attr_names.contains(&aname) {
                k += 1;
                aname = format!("{}_{k}", ra.attr.name);
            }
            attr_names.push(aname.clone());
            ra.attr.name = aname.clone();
            ob = if ra.attr.is_key() {
                ob.attr_key(aname, ra.attr.domain.clone())
            } else {
                ob.attr(aname, ra.attr.domain.clone())
            };
        }
        ob.finish();
    }

    fn add_relationships(&mut self, count: usize, rng: &mut Xoshiro256pp) {
        let n = self.used.len();
        if n < 2 {
            return;
        }
        for i in 0..count {
            let x = rng.gen_range(0..n);
            let mut y = rng.gen_range(0..n);
            if x == y {
                y = (y + 1) % n;
            }
            let ox = self.builder.object_by_name(&self.used[x]).expect("added");
            let oy = self.builder.object_by_name(&self.used[y]).expect("added");
            self.builder
                .relationship(format!("rel_{i}_{x}_{y}"))
                .participant(ox, Cardinality::MANY)
                .participant(oy, Cardinality::MANY)
                .finish();
        }
    }

    fn build(self) -> Schema {
        self.builder.build().expect("generated schemas are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_generation_is_deterministic_and_valid() {
        let config = GeneratorConfig::default();
        let p1 = config.generate_pair();
        let p2 = config.generate_pair();
        assert_eq!(p1.a, p2.a);
        assert_eq!(p1.b, p2.b);
        assert_eq!(p1.a.object_count(), config.objects_per_schema);
        assert_eq!(p1.b.object_count(), config.objects_per_schema);
        assert_eq!(p1.a.relationship_count(), config.relationships_per_schema);
    }

    #[test]
    fn generation_is_stable_across_processes() {
        // Cross-run determinism: the default pair's DDL hashes to a pinned
        // value, so a change to the PRNG sequence or to rendering order is
        // caught even between separate `cargo test` invocations (the
        // in-process `p1 == p2` check above can't see that).
        let pair = GeneratorConfig::default().generate_pair();
        let text = format!(
            "{}\n{}",
            sit_ecr::ddl::print(&pair.a),
            sit_ecr::ddl::print(&pair.b)
        );
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x1_0000_0001_b3);
        }
        assert_eq!(
            hash, 15_024_438_975_518_843_854,
            "generated schemas changed; re-pin this FNV-1a hash if the change is intentional"
        );
    }

    #[test]
    fn truth_matches_overlap_fraction() {
        let config = GeneratorConfig {
            objects_per_schema: 10,
            overlap: 0.6,
            ..Default::default()
        };
        let p = config.generate_pair();
        assert_eq!(p.truth.pair_count(), 6);
        // All truth names exist in their schemas.
        for t in &p.truth.assertions {
            assert!(p.a.object_by_name(&t.a).is_some(), "{}", t.a);
            assert!(p.b.object_by_name(&t.b).is_some(), "{}", t.b);
        }
        for (oa, aa, ob, ab) in &p.truth.attr_pairs {
            let o = p.a.object(p.a.object_by_name(oa).unwrap());
            assert!(o.attr_by_name(aa).is_some(), "{oa}.{aa}");
            let o = p.b.object(p.b.object_by_name(ob).unwrap());
            assert!(o.attr_by_name(ab).is_some(), "{ob}.{ab}");
        }
    }

    #[test]
    fn zero_overlap_means_no_truth() {
        let config = GeneratorConfig {
            overlap: 0.0,
            ..Default::default()
        };
        let p = config.generate_pair();
        assert_eq!(p.truth.pair_count(), 0);
        assert!(p.truth.attr_pairs.is_empty());
    }

    #[test]
    fn full_overlap_relates_every_object() {
        let config = GeneratorConfig {
            overlap: 1.0,
            contained_frac: 0.0,
            mayby_frac: 0.0,
            ..Default::default()
        };
        let p = config.generate_pair();
        assert_eq!(p.truth.pair_count(), config.objects_per_schema);
        assert!(p
            .truth
            .assertions
            .iter()
            .all(|t| t.assertion == Assertion::Equal));
    }

    #[test]
    fn contained_fraction_generates_contains_assertions() {
        let config = GeneratorConfig {
            objects_per_schema: 20,
            overlap: 1.0,
            contained_frac: 1.0,
            mayby_frac: 0.0,
            ..Default::default()
        };
        let p = config.generate_pair();
        assert!(p
            .truth
            .assertions
            .iter()
            .all(|t| t.assertion == Assertion::Contains));
        // Specializations carry the Senior_ prefix.
        assert!(p.truth.assertions.iter().all(|t| t.b.starts_with("Senior_")));
    }

    #[test]
    fn family_generation_shares_a_core() {
        let config = GeneratorConfig {
            objects_per_schema: 6,
            overlap: 0.5,
            ..Default::default()
        };
        let fam = config.generate_family(4);
        assert_eq!(fam.schemas.len(), 4);
        for s in &fam.schemas {
            assert_eq!(s.object_count(), 6);
        }
        // Pairwise truth: 3 shared concepts each.
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_eq!(fam.truths[i][j].pair_count(), 3, "({i},{j})");
            }
        }
    }

    #[test]
    fn large_scale_generation_stays_valid() {
        let config = GeneratorConfig {
            objects_per_schema: 120,
            overlap: 0.4,
            relationships_per_schema: 20,
            ..Default::default()
        };
        let p = config.generate_pair();
        assert_eq!(p.a.object_count(), 120);
        assert!(sit_ecr::validate(&p.a).is_empty());
        assert!(sit_ecr::validate(&p.b).is_empty());
    }
}
