//! DDA oracles — stand-ins for the live designer at the terminal.
//!
//! "Specifying assertions requires interacting with the DDA and cannot be
//! completely automated" (paper §3.4). For measurement we replace the
//! human with an oracle that answers the tool's two question types:
//! attribute equivalence (phase 2) and object-pair assertions (phase 3).

use sit_prng::Xoshiro256pp;

use sit_core::assertion::Assertion;

use crate::ground_truth::GroundTruth;

/// Answers the tool's questions during phases 2 and 3. Questions are posed
/// by element names (object/attribute names are schema-unique in generated
/// workloads).
pub trait DdaOracle {
    /// Phase 2: are these attributes equivalent?
    /// (`object_a.attr_a` of the first schema vs `object_b.attr_b` of the
    /// second.)
    fn attrs_equivalent(&mut self, oa: &str, aa: &str, ob: &str, ab: &str) -> bool;

    /// Phase 3: the assertion for an object pair. `None` means the DDA
    /// sees no relation worth asserting (the tool moves on).
    fn object_assertion(&mut self, a: &str, b: &str) -> Option<Assertion>;
}

/// Answers perfectly from ground truth.
#[derive(Clone, Debug)]
pub struct GroundTruthOracle<'a> {
    truth: &'a GroundTruth,
    /// Number of questions answered so far (both kinds) — the DDA-effort
    /// metric of the question-count benchmark.
    pub questions: usize,
}

impl<'a> GroundTruthOracle<'a> {
    /// Oracle over the given truth.
    pub fn new(truth: &'a GroundTruth) -> Self {
        Self { truth, questions: 0 }
    }
}

impl DdaOracle for GroundTruthOracle<'_> {
    fn attrs_equivalent(&mut self, oa: &str, aa: &str, ob: &str, ab: &str) -> bool {
        self.questions += 1;
        self.truth.attrs_equivalent(oa, aa, ob, ab)
    }

    fn object_assertion(&mut self, a: &str, b: &str) -> Option<Assertion> {
        self.questions += 1;
        self.truth.assertion_for(a, b)
    }
}

/// A fallible designer: wraps ground truth with an error rate. On an
/// attribute question, the answer flips with probability `error_rate`; on
/// an object question, a related pair is forgotten (answered `None`) with
/// the same probability. False *positive* assertions are not invented —
/// the model is an overlooked correspondence, the common real-world
/// failure.
#[derive(Clone, Debug)]
pub struct NoisyOracle<'a> {
    truth: &'a GroundTruth,
    rng: Xoshiro256pp,
    /// Probability of a wrong answer per question.
    pub error_rate: f64,
    /// Number of questions answered so far.
    pub questions: usize,
}

impl<'a> NoisyOracle<'a> {
    /// Noisy oracle with the given error rate and seed.
    pub fn new(truth: &'a GroundTruth, error_rate: f64, seed: u64) -> Self {
        Self {
            truth,
            rng: Xoshiro256pp::seed_from_u64(seed),
            error_rate,
            questions: 0,
        }
    }
}

impl DdaOracle for NoisyOracle<'_> {
    fn attrs_equivalent(&mut self, oa: &str, aa: &str, ob: &str, ab: &str) -> bool {
        self.questions += 1;
        let correct = self.truth.attrs_equivalent(oa, aa, ob, ab);
        if self.rng.gen_bool(self.error_rate) {
            !correct
        } else {
            correct
        }
    }

    fn object_assertion(&mut self, a: &str, b: &str) -> Option<Assertion> {
        self.questions += 1;
        let correct = self.truth.assertion_for(a, b);
        if correct.is_some() && self.rng.gen_bool(self.error_rate) {
            None
        } else {
            correct
        }
    }
}

/// Fixed-script oracle for tests and TUI sessions: explicit answer lists,
/// everything else negative.
#[derive(Clone, Debug, Default)]
pub struct ScriptedOracle {
    /// Attribute pairs to confirm: `(object_a, attr_a, object_b, attr_b)`.
    pub equivalences: Vec<(String, String, String, String)>,
    /// Object assertions to give: `(a, b, assertion)`.
    pub assertions: Vec<(String, String, Assertion)>,
}

impl ScriptedOracle {
    /// Add an equivalence answer.
    pub fn equate(mut self, oa: &str, aa: &str, ob: &str, ab: &str) -> Self {
        self.equivalences.push((
            oa.to_owned(),
            aa.to_owned(),
            ob.to_owned(),
            ab.to_owned(),
        ));
        self
    }

    /// Add an assertion answer.
    pub fn assert_pair(mut self, a: &str, b: &str, assertion: Assertion) -> Self {
        self.assertions.push((a.to_owned(), b.to_owned(), assertion));
        self
    }
}

impl DdaOracle for ScriptedOracle {
    fn attrs_equivalent(&mut self, oa: &str, aa: &str, ob: &str, ab: &str) -> bool {
        self.equivalences.iter().any(|(o1, a1, o2, a2)| {
            (o1 == oa && a1 == aa && o2 == ob && a2 == ab)
                || (o1 == ob && a1 == ab && o2 == oa && a2 == aa)
        })
    }

    fn object_assertion(&mut self, a: &str, b: &str) -> Option<Assertion> {
        self.assertions.iter().find_map(|(x, y, assertion)| {
            if x == a && y == b {
                Some(*assertion)
            } else if x == b && y == a {
                Some(assertion.converse())
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GeneratorConfig;

    #[test]
    fn ground_truth_oracle_counts_questions() {
        let pair = GeneratorConfig::default().generate_pair();
        let mut oracle = GroundTruthOracle::new(&pair.truth);
        let t = &pair.truth.assertions[0];
        assert_eq!(oracle.object_assertion(&t.a, &t.b), Some(t.assertion));
        assert_eq!(oracle.object_assertion(&t.a, "no_such_object"), None);
        assert_eq!(oracle.questions, 2);
    }

    #[test]
    fn noisy_oracle_with_zero_error_is_exact() {
        let pair = GeneratorConfig::default().generate_pair();
        let mut perfect = GroundTruthOracle::new(&pair.truth);
        let mut noisy = NoisyOracle::new(&pair.truth, 0.0, 1);
        for t in &pair.truth.assertions {
            assert_eq!(
                noisy.object_assertion(&t.a, &t.b),
                perfect.object_assertion(&t.a, &t.b)
            );
        }
    }

    #[test]
    fn noisy_oracle_forgets_at_full_error() {
        let pair = GeneratorConfig {
            overlap: 1.0,
            ..Default::default()
        }
        .generate_pair();
        let mut noisy = NoisyOracle::new(&pair.truth, 1.0, 2);
        for t in &pair.truth.assertions {
            assert_eq!(noisy.object_assertion(&t.a, &t.b), None, "forgotten");
        }
        // Attribute answers flip rather than vanish.
        let (oa, aa, ob, ab) = pair.truth.attr_pairs[0].clone();
        assert!(!noisy.attrs_equivalent(&oa, &aa, &ob, &ab));
    }

    #[test]
    fn scripted_oracle_answers_in_both_orientations() {
        let mut o = ScriptedOracle::default()
            .equate("Student", "name", "Pupil", "full_name")
            .assert_pair("Student", "Grad", Assertion::Contains);
        assert!(o.attrs_equivalent("Pupil", "full_name", "Student", "name"));
        assert!(!o.attrs_equivalent("Student", "gpa", "Pupil", "grade"));
        assert_eq!(o.object_assertion("Grad", "Student"), Some(Assertion::ContainedIn));
        assert_eq!(o.object_assertion("X", "Y"), None);
    }
}
