//! Naming and attribute perturbations: how the same concept ends up
//! looking different in two independently designed schemas.

use sit_prng::Xoshiro256pp;

use crate::concepts::{Concept, ConceptAttr};

/// Applies designer-style perturbations to concept renderings.
#[derive(Clone, Debug)]
pub struct Perturber {
    /// Probability that a rendered name uses an alternate instead of the
    /// canonical name.
    pub rename_prob: f64,
    /// Probability that a prototypical non-key attribute is dropped.
    pub drop_attr_prob: f64,
    /// Probability of adding a schema-local extra attribute.
    pub extra_attr_prob: f64,
}

impl Default for Perturber {
    fn default() -> Self {
        Self {
            rename_prob: 0.4,
            drop_attr_prob: 0.2,
            extra_attr_prob: 0.3,
        }
    }
}

/// A concept as rendered in one schema, plus which prototype attributes
/// survived (by index) so ground truth can align renderings.
#[derive(Clone, Debug)]
pub struct Rendering {
    /// The object class name used in this schema.
    pub name: String,
    /// Rendered attributes: `(prototype index or None for extras, name,
    /// attribute)`.
    pub attrs: Vec<RenderedAttr>,
}

/// One rendered attribute.
#[derive(Clone, Debug)]
pub struct RenderedAttr {
    /// Index of the prototype attribute this renders (`None` = extra).
    pub proto: Option<usize>,
    /// The rendered attribute.
    pub attr: sit_ecr::Attribute,
}

impl Perturber {
    /// Render `concept` for one schema.
    pub fn render(&self, concept: &Concept, rng: &mut Xoshiro256pp) -> Rendering {
        let name = self.pick_name(&concept.name, &concept.alternates, rng);
        let mut attrs = Vec::new();
        for (i, proto) in concept.attrs.iter().enumerate() {
            if !proto.key && rng.gen_bool(self.drop_attr_prob) {
                continue;
            }
            attrs.push(RenderedAttr {
                proto: Some(i),
                attr: self.render_attr(proto, rng),
            });
        }
        if rng.gen_bool(self.extra_attr_prob) {
            let extra_no: u32 = rng.gen_range(0u32..1000);
            attrs.push(RenderedAttr {
                proto: None,
                attr: sit_ecr::Attribute::new(
                    format!("note_{extra_no}"),
                    sit_ecr::Domain::Char,
                ),
            });
        }
        Rendering { name, attrs }
    }

    /// Render a specialized (subset) variant of a concept: prefixed name,
    /// the prototype's key, and a couple of subset-specific attributes.
    pub fn render_specialization(
        &self,
        concept: &Concept,
        prefix: &str,
        rng: &mut Xoshiro256pp,
    ) -> Rendering {
        let base = self.pick_name(&concept.name, &concept.alternates, rng);
        let mut attrs = Vec::new();
        for (i, proto) in concept.attrs.iter().enumerate() {
            // Specializations keep the key and roughly half the rest.
            if proto.key || rng.gen_bool(0.5) {
                attrs.push(RenderedAttr {
                    proto: Some(i),
                    attr: self.render_attr(proto, rng),
                });
            }
        }
        let extra_no: u32 = rng.gen_range(0u32..1000);
        attrs.push(RenderedAttr {
            proto: None,
            attr: sit_ecr::Attribute::new(
                format!("{}_only_{extra_no}", prefix.to_lowercase()),
                sit_ecr::Domain::Char,
            ),
        });
        Rendering {
            name: format!("{prefix}_{base}"),
            attrs,
        }
    }

    fn render_attr(&self, proto: &ConceptAttr, rng: &mut Xoshiro256pp) -> sit_ecr::Attribute {
        let name = self.pick_name(&proto.name, &proto.alternates, rng);
        sit_ecr::Attribute {
            name,
            domain: proto.domain.clone(),
            key: proto.key.into(),
        }
    }

    fn pick_name(&self, canonical: &str, alternates: &[String], rng: &mut Xoshiro256pp) -> String {
        if !alternates.is_empty() && rng.gen_bool(self.rename_prob) {
            alternates[rng.gen_range(0..alternates.len())].clone()
        } else {
            canonical.to_owned()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concepts::ConceptPool;
    
    #[test]
    fn render_keeps_keys_and_tracks_prototypes() {
        let pool = ConceptPool::builtin();
        let p = Perturber {
            drop_attr_prob: 0.9,
            ..Default::default()
        };
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        for c in pool.concepts() {
            let r = p.render(c, &mut rng);
            // The key always survives.
            assert!(
                r.attrs.iter().any(|a| a.attr.is_key()),
                "{} kept its key",
                c.name
            );
            // Every prototype index is in range.
            for ra in &r.attrs {
                if let Some(i) = ra.proto {
                    assert!(i < c.attrs.len());
                }
            }
        }
    }

    #[test]
    fn rename_prob_zero_uses_canonical_names() {
        let pool = ConceptPool::builtin();
        let p = Perturber {
            rename_prob: 0.0,
            drop_attr_prob: 0.0,
            extra_attr_prob: 0.0,
        };
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let r = p.render(pool.get(0), &mut rng);
        assert_eq!(r.name, pool.get(0).name);
        assert_eq!(r.attrs.len(), pool.get(0).attrs.len());
    }

    #[test]
    fn rename_prob_one_uses_alternates() {
        let pool = ConceptPool::builtin();
        let p = Perturber {
            rename_prob: 1.0,
            drop_attr_prob: 0.0,
            extra_attr_prob: 0.0,
        };
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let c = pool.get(0);
        let r = p.render(c, &mut rng);
        assert!(c.alternates.contains(&r.name), "{}", r.name);
    }

    #[test]
    fn specialization_is_prefixed_and_has_extra() {
        let pool = ConceptPool::builtin();
        let p = Perturber {
            rename_prob: 0.0,
            ..Default::default()
        };
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let r = p.render_specialization(pool.get(0), "Senior", &mut rng);
        assert!(r.name.starts_with("Senior_"));
        assert!(r.attrs.iter().any(|a| a.proto.is_none()), "subset-specific attr");
        assert!(r.attrs.iter().any(|a| a.attr.is_key()));
    }

    #[test]
    fn rendering_is_deterministic_per_seed() {
        let pool = ConceptPool::builtin();
        let p = Perturber::default();
        let mut r1 = Xoshiro256pp::seed_from_u64(42);
        let mut r2 = Xoshiro256pp::seed_from_u64(42);
        let a = p.render(pool.get(3), &mut r1);
        let b = p.render(pool.get(3), &mut r2);
        assert_eq!(a.name, b.name);
        assert_eq!(a.attrs.len(), b.attrs.len());
    }
}
