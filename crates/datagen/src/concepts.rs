//! The concept pool: prototypical object classes that generated schemas
//! render.
//!
//! A *concept* is a real-world class with a canonical name, naming
//! alternates (synonyms and abbreviations a designer might use), and a
//! list of prototypical attributes. The built-in pool covers the
//! university/company world of the paper's examples; pools extend
//! themselves with systematically named synthetic concepts when a workload
//! asks for more concepts than the hand-written ones.

use sit_ecr::Domain;

/// A prototypical attribute of a concept.
#[derive(Clone, Debug)]
pub struct ConceptAttr {
    /// Canonical attribute name.
    pub name: String,
    /// Naming alternates designers use for the same attribute.
    pub alternates: Vec<String>,
    /// Domain.
    pub domain: Domain,
    /// Key attribute?
    pub key: bool,
}

impl ConceptAttr {
    fn new(name: &str, alternates: &[&str], domain: Domain, key: bool) -> Self {
        Self {
            name: name.to_owned(),
            alternates: alternates.iter().map(|s| (*s).to_owned()).collect(),
            domain,
            key,
        }
    }
}

/// A prototypical object class.
#[derive(Clone, Debug)]
pub struct Concept {
    /// Canonical concept name.
    pub name: String,
    /// Naming alternates (synonyms/abbreviations).
    pub alternates: Vec<String>,
    /// Prototypical attributes.
    pub attrs: Vec<ConceptAttr>,
}

impl Concept {
    fn new(name: &str, alternates: &[&str], attrs: Vec<ConceptAttr>) -> Self {
        Self {
            name: name.to_owned(),
            alternates: alternates.iter().map(|s| (*s).to_owned()).collect(),
            attrs,
        }
    }
}

/// An ordered pool of concepts.
#[derive(Clone, Debug)]
pub struct ConceptPool {
    concepts: Vec<Concept>,
}

impl ConceptPool {
    /// The built-in university/company pool (24 hand-written concepts).
    pub fn builtin() -> Self {
        use Domain::*;
        let a = ConceptAttr::new;
        let concepts = vec![
            Concept::new("Student", &["Pupil", "Learner"], vec![
                a("student_id", &["sid", "student_no"], Int, true),
                a("name", &["full_name", "student_name"], Char, false),
                a("gpa", &["grade_point_avg"], Real, false),
                a("birth_date", &["dob"], Date, false),
            ]),
            Concept::new("Faculty", &["Instructor", "Professor", "Teacher"], vec![
                a("faculty_id", &["fid", "teacher_no"], Int, true),
                a("name", &["full_name"], Char, false),
                a("rank", &["title"], Char, false),
                a("salary", &["wage", "pay"], Real, false),
            ]),
            Concept::new("Department", &["Dept", "Division"], vec![
                a("dept_no", &["dno", "department_number"], Int, true),
                a("dname", &["dept_name", "department_name"], Char, false),
                a("budget", &["funds"], Real, false),
            ]),
            Concept::new("Course", &["Class", "Subject"], vec![
                a("course_no", &["cno", "course_number"], Int, true),
                a("title", &["course_title", "name"], Char, false),
                a("credits", &["credit_hours"], Int, false),
            ]),
            Concept::new("Employee", &["Worker", "Staff"], vec![
                a("ssn", &["emp_id", "employee_no"], Int, true),
                a("name", &["emp_name"], Char, false),
                a("salary", &["wage"], Real, false),
                a("hire_date", &["start_date"], Date, false),
            ]),
            Concept::new("Project", &["Proj", "Venture"], vec![
                a("proj_no", &["pno", "project_number"], Int, true),
                a("pname", &["proj_name", "project_name"], Char, false),
                a("deadline", &["due_date"], Date, false),
            ]),
            Concept::new("Building", &["Facility"], vec![
                a("building_no", &["bno"], Int, true),
                a("address", &["location"], Char, false),
                a("floors", &["storeys"], Int, false),
            ]),
            Concept::new("Library", &["Archive"], vec![
                a("library_id", &["lib_no"], Int, true),
                a("name", &["lib_name"], Char, false),
                a("volumes", &["book_count"], Int, false),
            ]),
            Concept::new("Book", &["Volume", "Publication"], vec![
                a("isbn", &["book_no"], Char, true),
                a("title", &["book_title"], Char, false),
                a("year", &["pub_year"], Int, false),
            ]),
            Concept::new("Laboratory", &["Lab"], vec![
                a("lab_id", &["lab_no"], Int, true),
                a("name", &["lab_name"], Char, false),
                a("capacity", &["seats"], Int, false),
            ]),
            Concept::new("Grant", &["Award", "Funding"], vec![
                a("grant_no", &["award_no"], Int, true),
                a("amount", &["total"], Real, false),
                a("sponsor", &["agency"], Char, false),
            ]),
            Concept::new("Customer", &["Client", "Patron"], vec![
                a("customer_no", &["cust_id", "client_no"], Int, true),
                a("name", &["cust_name"], Char, false),
                a("phone", &["telephone", "tel"], Char, false),
            ]),
            Concept::new("Order", &["Purchase"], vec![
                a("order_no", &["ord_id"], Int, true),
                a("placed", &["order_date"], Date, false),
                a("total", &["amount"], Real, false),
            ]),
            Concept::new("Product", &["Item", "Article"], vec![
                a("product_no", &["prod_id", "item_no"], Int, true),
                a("description", &["desc"], Char, false),
                a("price", &["unit_price", "cost"], Real, false),
            ]),
            Concept::new("Supplier", &["Vendor", "Provider"], vec![
                a("supplier_no", &["vendor_id"], Int, true),
                a("name", &["vendor_name"], Char, false),
                a("city", &["location"], Char, false),
            ]),
            Concept::new("Warehouse", &["Depot", "Storehouse"], vec![
                a("warehouse_no", &["wh_id"], Int, true),
                a("address", &["location"], Char, false),
                a("capacity", &["volume"], Int, false),
            ]),
            Concept::new("Vehicle", &["Car", "Automobile"], vec![
                a("vin", &["vehicle_no"], Char, true),
                a("model", &["make_model"], Char, false),
                a("year", &["model_year"], Int, false),
            ]),
            Concept::new("Patient", &["Case"], vec![
                a("patient_id", &["pat_no"], Int, true),
                a("name", &["patient_name"], Char, false),
                a("admitted", &["admission_date"], Date, false),
            ]),
            Concept::new("Doctor", &["Physician", "Clinician"], vec![
                a("doctor_id", &["doc_no"], Int, true),
                a("name", &["doctor_name"], Char, false),
                a("specialty", &["speciality", "field"], Char, false),
            ]),
            Concept::new("Ward", &["Unit"], vec![
                a("ward_no", &["unit_no"], Int, true),
                a("name", &["ward_name"], Char, false),
                a("beds", &["bed_count"], Int, false),
            ]),
            Concept::new("Flight", &["Trip"], vec![
                a("flight_no", &["flt_no"], Char, true),
                a("origin", &["from_airport"], Char, false),
                a("destination", &["to_airport"], Char, false),
            ]),
            Concept::new("Passenger", &["Traveler"], vec![
                a("passenger_id", &["pax_no"], Int, true),
                a("name", &["passenger_name"], Char, false),
                a("frequent_flyer", &["ff_no"], Char, false),
            ]),
            Concept::new("Account", &["Ledger"], vec![
                a("account_no", &["acct_id"], Int, true),
                a("balance", &["current_balance"], Real, false),
                a("opened", &["open_date"], Date, false),
            ]),
            Concept::new("Branch", &["Office", "Outlet"], vec![
                a("branch_no", &["office_id"], Int, true),
                a("city", &["location"], Char, false),
                a("manager", &["mgr_name"], Char, false),
            ]),
        ];
        Self { concepts }
    }

    /// Number of concepts currently in the pool.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// `true` when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// The concepts.
    pub fn concepts(&self) -> &[Concept] {
        &self.concepts
    }

    /// Concept by index.
    pub fn get(&self, i: usize) -> &Concept {
        &self.concepts[i]
    }

    /// Grow the pool to at least `n` concepts by appending systematically
    /// named synthetic concepts (each with a key and three data
    /// attributes, plus deterministic naming alternates).
    pub fn ensure(&mut self, n: usize) {
        use Domain::*;
        while self.concepts.len() < n {
            let i = self.concepts.len();
            let name = format!("Concept{i}");
            let alternates = vec![format!("Cncpt{i}"), format!("Notion{i}")];
            let attrs = vec![
                ConceptAttr::new(
                    &format!("c{i}_id"),
                    &[&format!("c{i}_no"), &format!("concept{i}_key")],
                    Int,
                    true,
                ),
                ConceptAttr::new(
                    &format!("c{i}_label"),
                    &[&format!("c{i}_name")],
                    Char,
                    false,
                ),
                ConceptAttr::new(
                    &format!("c{i}_value"),
                    &[&format!("c{i}_amount")],
                    Real,
                    false,
                ),
                ConceptAttr::new(
                    &format!("c{i}_when"),
                    &[&format!("c{i}_date")],
                    Date,
                    false,
                ),
            ];
            self.concepts.push(Concept {
                name,
                alternates,
                attrs,
            });
        }
    }
}

impl Default for ConceptPool {
    fn default() -> Self {
        Self::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_pool_is_well_formed() {
        let pool = ConceptPool::builtin();
        assert!(pool.len() >= 20);
        for c in pool.concepts() {
            assert!(!c.attrs.is_empty(), "{} has attributes", c.name);
            assert!(
                c.attrs.iter().filter(|a| a.key).count() == 1,
                "{} has exactly one key",
                c.name
            );
            // Names unique within the concept.
            let mut names: Vec<&str> = c.attrs.iter().map(|a| a.name.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), c.attrs.len(), "{}", c.name);
        }
        // Concept names unique.
        let mut names: Vec<&str> = pool.concepts().iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), pool.len());
    }

    #[test]
    fn ensure_extends_deterministically() {
        let mut pool = ConceptPool::builtin();
        let base = pool.len();
        pool.ensure(base + 10);
        assert_eq!(pool.len(), base + 10);
        assert_eq!(pool.get(base).name, format!("Concept{base}"));
        // Idempotent.
        pool.ensure(base);
        assert_eq!(pool.len(), base + 10);
    }
}
