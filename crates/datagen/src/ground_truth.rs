//! Ground truth for generated workloads: which elements truly correspond.
//!
//! Correspondences are recorded by *name* (schema-unique object names,
//! attribute names within their owner), so the truth survives the schemas
//! being registered in any session.

use sit_core::assertion::Assertion;

/// The true assertion between two object classes of a generated pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrueAssertion {
    /// Object name in the first schema.
    pub a: String,
    /// Object name in the second schema.
    pub b: String,
    /// The assertion that holds (`a (assertion) b`).
    pub assertion: Assertion,
}

/// Ground truth of one generated schema pair.
#[derive(Clone, Debug, Default)]
pub struct GroundTruth {
    /// True object-pair assertions (pairs not listed are unrelated:
    /// effectively disjoint non-integrable).
    pub assertions: Vec<TrueAssertion>,
    /// True attribute equivalences:
    /// `(object_a, attr_a, object_b, attr_b)`.
    pub attr_pairs: Vec<(String, String, String, String)>,
}

impl GroundTruth {
    /// The true assertion for an object pair, if the pair corresponds.
    pub fn assertion_for(&self, a: &str, b: &str) -> Option<Assertion> {
        for t in &self.assertions {
            if t.a == a && t.b == b {
                return Some(t.assertion);
            }
            if t.a == b && t.b == a {
                return Some(t.assertion.converse());
            }
        }
        None
    }

    /// Is the attribute pair truly equivalent?
    pub fn attrs_equivalent(&self, oa: &str, aa: &str, ob: &str, ab: &str) -> bool {
        self.attr_pairs.iter().any(|(o1, a1, o2, a2)| {
            (o1 == oa && a1 == aa && o2 == ob && a2 == ab)
                || (o1 == ob && a1 == ab && o2 == oa && a2 == aa)
        })
    }

    /// Number of truly corresponding object pairs.
    pub fn pair_count(&self) -> usize {
        self.assertions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_orientation_aware() {
        let gt = GroundTruth {
            assertions: vec![TrueAssertion {
                a: "Student".into(),
                b: "Grad".into(),
                assertion: Assertion::Contains,
            }],
            attr_pairs: vec![(
                "Student".into(),
                "name".into(),
                "Grad".into(),
                "full_name".into(),
            )],
        };
        assert_eq!(gt.assertion_for("Student", "Grad"), Some(Assertion::Contains));
        assert_eq!(gt.assertion_for("Grad", "Student"), Some(Assertion::ContainedIn));
        assert_eq!(gt.assertion_for("Student", "Ghost"), None);
        assert!(gt.attrs_equivalent("Student", "name", "Grad", "full_name"));
        assert!(gt.attrs_equivalent("Grad", "full_name", "Student", "name"));
        assert!(!gt.attrs_equivalent("Student", "name", "Grad", "gpa"));
        assert_eq!(gt.pair_count(), 1);
    }
}
