//! In-tree micro-bench harness: the hermetic replacement for Criterion.
//!
//! A [`Bench`] groups labelled measurements. Each measurement warms the
//! closure up, then times `samples` individual invocations and keeps the
//! order statistics that matter for a trajectory (min / median / p95 /
//! mean). [`Bench::finish`] prints an aligned table and writes a
//! machine-readable `BENCH_<name>.json` next to the working directory so
//! successive PRs leave a diffable perf record.
//!
//! ```no_run
//! use sit_bench::harness::Bench;
//!
//! let mut b = Bench::new("closure");
//! b.run("containment_chain/25", || 2 + 2);
//! b.finish().unwrap();
//! ```

use std::hint::black_box;
use std::time::Instant;

/// Order statistics of one labelled measurement, in nanoseconds.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Label, by convention `operation/param`.
    pub label: String,
    /// Timed invocations behind the statistics.
    pub samples: u32,
    /// Fastest sample.
    pub min_ns: u64,
    /// Nearest-rank median.
    pub median_ns: u64,
    /// Nearest-rank 95th percentile.
    pub p95_ns: u64,
    /// Arithmetic mean.
    pub mean_ns: u64,
}

/// A named group of measurements that lands in `BENCH_<name>.json`.
pub struct Bench {
    name: String,
    warmup: u32,
    samples: u32,
    results: Vec<Measurement>,
}

impl Bench {
    /// Harness writing `BENCH_<name>.json`, with default warmup (5) and
    /// sample (40) counts.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            warmup: 5,
            samples: 40,
            results: Vec::new(),
        }
    }

    /// Override warmup/sample counts (e.g. fewer samples for slow cases).
    pub fn with_counts(mut self, warmup: u32, samples: u32) -> Self {
        assert!(samples > 0);
        self.warmup = warmup;
        self.samples = samples;
        self
    }

    /// Measure `f`: warm up, then time `samples` single invocations.
    pub fn run<R>(&mut self, label: impl Into<String>, mut f: impl FnMut() -> R) {
        self.run_with_setup(label, || (), |()| f());
    }

    /// Measure `f` alone when each invocation needs fresh input that must
    /// not count toward the timing (Criterion's `iter_batched`).
    pub fn run_with_setup<S, R>(
        &mut self,
        label: impl Into<String>,
        mut setup: impl FnMut() -> S,
        mut f: impl FnMut(S) -> R,
    ) {
        for _ in 0..self.warmup {
            black_box(f(setup()));
        }
        let mut ns: Vec<u64> = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = f(input);
            let elapsed = start.elapsed();
            black_box(out);
            ns.push(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
        }
        ns.sort_unstable();
        let nearest_rank = |q_num: usize, q_den: usize| {
            // Nearest-rank percentile on the sorted samples.
            let rank = (ns.len() * q_num).div_ceil(q_den);
            ns[rank.max(1) - 1]
        };
        let label = label.into();
        let m = Measurement {
            samples: self.samples,
            min_ns: ns[0],
            median_ns: nearest_rank(1, 2),
            p95_ns: nearest_rank(19, 20),
            mean_ns: (ns.iter().map(|&v| u128::from(v)).sum::<u128>() / ns.len() as u128) as u64,
            label,
        };
        self.results.push(m);
    }

    /// Print the result table and write `BENCH_<name>.json` (results
    /// sorted by label for stable diffs). Returns the JSON path.
    pub fn finish(mut self) -> std::io::Result<std::path::PathBuf> {
        self.results.sort_by(|a, b| a.label.cmp(&b.label));
        println!("\n## bench {} ({} samples/label)\n", self.name, self.samples);
        let rows: Vec<Vec<String>> = self
            .results
            .iter()
            .map(|m| {
                vec![
                    m.label.clone(),
                    fmt_ns(m.min_ns),
                    fmt_ns(m.median_ns),
                    fmt_ns(m.p95_ns),
                    fmt_ns(m.mean_ns),
                ]
            })
            .collect();
        println!("{}", crate::table(&["label", "min", "median", "p95", "mean"], &rows));
        let path = std::path::PathBuf::from(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        println!("wrote {}", path.display());
        Ok(path)
    }

    /// The JSON document `finish` writes: fixed key order, one object per
    /// measurement.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"bench\": {},\n  \"results\": [\n",
            json_string(&self.name)
        ));
        for (i, m) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": {}, \"samples\": {}, \"min_ns\": {}, \"median_ns\": {}, \"p95_ns\": {}, \"mean_ns\": {}}}{}\n",
                json_string(&m.label),
                m.samples,
                m.min_ns,
                m.median_ns,
                m.p95_ns,
                m.mean_ns,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Human-readable nanoseconds (the table column format).
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// A JSON string literal with the escapes the repo's labels can need.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_orders_statistics() {
        let mut b = Bench::new("unit").with_counts(1, 9);
        let mut n = 0u64;
        b.run("spin", || {
            n = n.wrapping_add(1);
            std::hint::black_box((0..100u64).sum::<u64>())
        });
        let m = &b.results[0];
        assert_eq!(m.samples, 9);
        assert!(m.min_ns <= m.median_ns && m.median_ns <= m.p95_ns);
        assert!(m.mean_ns >= m.min_ns && m.mean_ns <= m.p95_ns);
    }

    #[test]
    fn setup_not_timed_shape() {
        let mut b = Bench::new("unit").with_counts(0, 3);
        b.run_with_setup("vec", || vec![1u8; 16], |v| v.len());
        assert_eq!(b.results.len(), 1);
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let mut b = Bench::new("unit").with_counts(0, 2);
        b.run("b/second", || 1);
        b.run("a/\"first\"", || 2);
        b.results.sort_by(|x, y| x.label.cmp(&y.label));
        let json = b.to_json();
        assert!(json.starts_with("{\n  \"bench\": \"unit\""));
        let a = json.find("a/\\\"first\\\"").expect("escaped label present");
        let b_pos = json.find("b/second").unwrap();
        assert!(a < b_pos, "sorted by label");
        assert!(json.contains("\"min_ns\":"));
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(17), "17ns");
        assert_eq!(fmt_ns(1_500), "1.50µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
