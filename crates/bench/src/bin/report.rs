//! Measured tables B1–B7 (see EXPERIMENTS.md): the quantitative side of
//! the reproduction, substantiating the paper's qualitative claims on
//! synthetic workloads with known ground truth.
//!
//! ```text
//! report            # all tables
//! report B1         # one table
//! ```
//!
//! Besides the plain-text tables, every measured section is collected
//! into `BENCH_report.json` (sections sorted by code, fixed key order),
//! so successive PRs produce a diffable perf/quality trajectory.

use std::time::Instant;

use sit_bench::harness::json_string;
use sit_bench::{
    drive_session, random_pairs, ranking_quality, table, Phase2Strategy, Phase3Strategy,
};
use sit_core::assertion::Assertion;
use sit_core::session::Session;
use sit_datagen::oracle::{GroundTruthOracle, NoisyOracle};
use sit_datagen::GeneratorConfig;
use sit_matcher::{best_integration_order, WeightedResemblance};
use sit_translate::{HierSchema, RecordType, RelSchema, Table};

fn main() {
    let which: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| which.is_empty() || which.iter().any(|w| w == name);
    let mut report = Report::default();
    if want("B1") {
        b1_question_count(&mut report);
    }
    if want("B2") {
        b2_heuristic_quality(&mut report);
    }
    if want("B3") {
        b3_closure_cost(&mut report);
    }
    if want("B4") {
        b4_integration_cost(&mut report);
    }
    if want("B5") {
        b5_ocs_cost(&mut report);
    }
    if want("B6") {
        b6_nary_order(&mut report);
    }
    if want("B7") {
        b7_translation(&mut report);
    }
    report
        .write_json(std::path::Path::new("BENCH_report.json"))
        .expect("write BENCH_report.json");
}

/// One measured table: printed as before, and one entry of
/// `BENCH_report.json`.
struct Section {
    code: String,
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    note: Option<String>,
}

/// Collects every section the selected tables produced.
#[derive(Default)]
struct Report {
    sections: Vec<Section>,
}

impl Report {
    /// Print a table the way the report always has, and record it.
    fn section(
        &mut self,
        code: &str,
        title: &str,
        headers: &[&str],
        rows: Vec<Vec<String>>,
        note: Option<&str>,
    ) {
        println!("\n### {code} — {title}\n");
        println!("{}", table(headers, &rows));
        if let Some(note) = note {
            println!("{note}");
        }
        self.sections.push(Section {
            code: code.to_owned(),
            title: title.to_owned(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows,
            note: note.map(str::to_owned),
        });
    }

    /// The JSON trajectory record: one object per section, keyed and
    /// sorted by section code, with fixed key order inside each section.
    fn write_json(mut self, path: &std::path::Path) -> std::io::Result<()> {
        self.sections.sort_by(|a, b| a.code.cmp(&b.code));
        let mut out = String::from("{\n");
        for (i, s) in self.sections.iter().enumerate() {
            let strings = |xs: &[String]| {
                xs.iter().map(|x| json_string(x)).collect::<Vec<_>>().join(", ")
            };
            out.push_str(&format!(
                "  {}: {{\n    \"title\": {},\n    \"headers\": [{}],\n    \"rows\": [\n",
                json_string(&s.code),
                json_string(&s.title),
                strings(&s.headers)
            ));
            for (j, row) in s.rows.iter().enumerate() {
                out.push_str(&format!(
                    "      [{}]{}\n",
                    strings(row),
                    if j + 1 < s.rows.len() { "," } else { "" }
                ));
            }
            out.push_str("    ]");
            if let Some(note) = &s.note {
                out.push_str(&format!(",\n    \"note\": {}", json_string(note)));
            }
            out.push_str(&format!(
                "\n  }}{}\n",
                if i + 1 < self.sections.len() { "," } else { "" }
            ));
        }
        out.push_str("}\n");
        std::fs::write(path, out)?;
        println!("\nwrote {}", path.display());
        Ok(())
    }
}

/// B1: DDA question count — naive all-pairs vs OCS-ranked vs ranked plus
/// transitive derivation, over schema size.
fn b1_question_count(report: &mut Report) {
    let mut rows = Vec::new();
    for objects in [6, 12, 24, 48] {
        let pair = GeneratorConfig {
            objects_per_schema: objects,
            overlap: 0.5,
            contained_frac: 0.2,
            category_frac: 0.6,
            seed: 7 + objects as u64,
            ..Default::default()
        }
        .generate_pair();
        let mut row = vec![objects.to_string(), pair.truth.pair_count().to_string()];
        for strategy in [
            Phase3Strategy::AllPairs,
            Phase3Strategy::Ranked,
            Phase3Strategy::RankedWithClosure,
        ] {
            let mut oracle = GroundTruthOracle::new(&pair.truth);
            let driven = drive_session(&pair, &mut oracle, Phase2Strategy::Exhaustive, strategy);
            row.push(driven.stats.object_questions.to_string());
        }
        rows.push(row);
    }
    report.section(
        "B1",
        "DDA question count by strategy (phase 3 object questions)",
        &["objects/schema", "true pairs", "all-pairs", "ranked", "ranked+closure"],
        rows,
        Some("shape check: all-pairs >> ranked >= ranked+closure"),
    );
}

/// B2: ranking quality — random order vs attribute-ratio vs weighted
/// matcher-based suggestion pipeline.
fn b2_heuristic_quality(report: &mut Report) {
    let mut rows = Vec::new();
    for (label, rename_prob) in [("clean names", 0.0), ("noisy names", 0.6)] {
        let pair = GeneratorConfig {
            objects_per_schema: 16,
            overlap: 0.5,
            seed: 42,
            perturber: sit_datagen::Perturber {
                rename_prob,
                ..Default::default()
            },
            ..Default::default()
        }
        .generate_pair();
        // Attribute-ratio ranking needs phase 2 done; use the perfect
        // oracle for it.
        let mut oracle = GroundTruthOracle::new(&pair.truth);
        let driven = drive_session(
            &pair,
            &mut oracle,
            Phase2Strategy::Exhaustive,
            Phase3Strategy::Ranked,
        );
        let (sa, sb) = driven.ids;
        let ranked = driven.session.candidates(sa, sb);
        let q_ratio = ranking_quality(&driven.session, &ranked, &pair.truth);
        let rand = random_pairs(&driven.session, sa, sb, 1);
        let q_rand = ranking_quality(&driven.session, &rand, &pair.truth);
        // Matcher-suggested phase 2 (no oracle answers needed for the
        // ranking itself: equivalences come from suggestions alone).
        let mut oracle2 = GroundTruthOracle::new(&pair.truth);
        let driven2 = drive_session(
            &pair,
            &mut oracle2,
            Phase2Strategy::MatcherSuggested { threshold: 0.55 },
            Phase3Strategy::Ranked,
        );
        let ranked2 = driven2.session.candidates(driven2.ids.0, driven2.ids.1);
        let q_matcher = ranking_quality(&driven2.session, &ranked2, &pair.truth);
        for (strategy, q) in [
            ("random order", q_rand),
            ("attribute ratio", q_ratio),
            ("matcher-suggested", q_matcher),
        ] {
            rows.push(vec![
                label.to_owned(),
                strategy.to_owned(),
                format!("{:.2}", q.precision_at_k),
                format!("{:.2}", q.recall),
                format!("{:.2}", q.mrr),
            ]);
        }
    }
    report.section(
        "B2",
        "candidate-ranking quality (precision@k / recall / MRR)",
        &["workload", "ranking", "prec@k", "recall", "MRR"],
        rows,
        Some("shape check: attribute ratio >> random; matcher holds up under noisy names"),
    );
}

/// B3: closure cost — assertion propagation and conflict detection time.
fn b3_closure_cost(report: &mut Report) {
    let mut rows = Vec::new();
    for n in [25usize, 50, 100, 200] {
        let mut engine = sit_core::closure::AssertionEngine::<u32>::new();
        let start = Instant::now();
        for i in 0..n as u32 {
            engine
                .assert(i, i + 1, Assertion::ContainedIn, |x| format!("n{x}"))
                .unwrap();
        }
        let assert_time = start.elapsed();
        let pinned = engine.pinned().len();
        // Conflict detection at the far ends of the chain.
        let start = Instant::now();
        let err = engine.assert(n as u32, 0, Assertion::ContainedIn, |x| format!("n{x}"));
        let conflict_time = start.elapsed();
        assert!(err.is_err());
        rows.push(vec![
            n.to_string(),
            format!("{:.2?}", assert_time),
            pinned.to_string(),
            format!("{:.2?}", conflict_time),
        ]);
    }
    report.section(
        "B3",
        "transitive derivation cost (chain of contained-in assertions)",
        &["chain length", "assert+derive time", "pinned pairs", "conflict check"],
        rows,
        None,
    );
}

/// B4: full four-phase pipeline cost over schema size and overlap.
fn b4_integration_cost(report: &mut Report) {
    let mut rows = Vec::new();
    for (objects, overlap) in [(8, 0.5), (16, 0.5), (32, 0.5), (16, 0.25), (16, 0.75)] {
        let pair = GeneratorConfig {
            objects_per_schema: objects,
            overlap,
            seed: 11,
            ..Default::default()
        }
        .generate_pair();
        let mut oracle = GroundTruthOracle::new(&pair.truth);
        let start = Instant::now();
        let driven = drive_session(
            &pair,
            &mut oracle,
            Phase2Strategy::Exhaustive,
            Phase3Strategy::RankedWithClosure,
        );
        let phase23 = start.elapsed();
        let start = Instant::now();
        let result = driven
            .session
            .integrate(driven.ids.0, driven.ids.1, &Default::default())
            .expect("integrates");
        let phase4 = start.elapsed();
        rows.push(vec![
            objects.to_string(),
            format!("{overlap:.2}"),
            format!("{:.2?}", phase23),
            format!("{:.2?}", phase4),
            result.schema.object_count().to_string(),
        ]);
    }
    report.section(
        "B4",
        "integration pipeline cost (drive phases 2-3, then integrate)",
        &["objects/schema", "overlap", "phases 2-3", "phase 4", "integrated objects"],
        rows,
        None,
    );
}

/// B5: ACS→OCS derivation cost.
fn b5_ocs_cost(report: &mut Report) {
    let mut rows = Vec::new();
    for objects in [8usize, 16, 32, 64] {
        let pair = GeneratorConfig {
            objects_per_schema: objects,
            overlap: 0.5,
            seed: 3,
            ..Default::default()
        }
        .generate_pair();
        let mut oracle = GroundTruthOracle::new(&pair.truth);
        let driven = drive_session(
            &pair,
            &mut oracle,
            Phase2Strategy::Exhaustive,
            Phase3Strategy::Ranked,
        );
        let (sa, sb) = driven.ids;
        let start = Instant::now();
        let m = sit_core::resemblance::ocs_matrix(
            driven.session.catalog(),
            driven.session.equivalences(),
            sa,
            sb,
        );
        let elapsed = start.elapsed();
        let nonzero: usize = m.iter().flatten().filter(|&&v| v > 0).count();
        rows.push(vec![
            objects.to_string(),
            format!("{}x{}", m.len(), m.first().map(Vec::len).unwrap_or(0)),
            nonzero.to_string(),
            format!("{:.2?}", elapsed),
        ]);
    }
    report.section(
        "B5",
        "OCS matrix derivation cost",
        &["objects/schema", "matrix", "nonzero entries", "derive time"],
        rows,
        None,
    );
}

/// B6: n-ary fold order — resemblance-guided vs adversarial ordering.
///
/// The fold is driven manually (not through `fold_integrate`) so the
/// report can track, via integration provenance, which original concepts
/// each accumulated object class carries — the DDA-question model charges
/// one question per (accumulated object × next-schema object) pair.
fn b6_nary_order(report: &mut Report) {
    let config = GeneratorConfig {
        objects_per_schema: 8,
        overlap: 0.75,
        seed: 23,
        perturber: sit_datagen::Perturber {
            rename_prob: 0.0,
            drop_attr_prob: 0.0,
            extra_attr_prob: 0.0,
        },
        ..Default::default()
    };
    let family = config.generate_family_with(6, true);
    let w = WeightedResemblance::default();
    let refs: Vec<&sit_ecr::Schema> = family.schemas.iter().collect();
    let guided = best_integration_order(&w, &refs);
    let mut reverse = guided.clone();
    reverse.reverse();
    let mut rows = Vec::new();
    for (label, order) in [("resemblance-guided", guided), ("reverse", reverse)] {
        let start = Instant::now();
        let outcome = run_fold(&family, &order);
        let elapsed = start.elapsed();
        rows.push(vec![
            label.to_owned(),
            outcome.questions.to_string(),
            outcome.final_objects.to_string(),
            format!("{:.2?}", elapsed),
        ]);
    }
    report.section(
        "B6",
        "n-ary fold order: resemblance-guided vs reverse order",
        &["fold order", "questions", "final objects", "time"],
        rows,
        Some("shape check: guided order merges similar schemas early and asks fewer questions"),
    );

    // Noise sensitivity: the same drive under a forgetful DDA.
    let pair = GeneratorConfig {
        objects_per_schema: 24,
        overlap: 0.8,
        seed: 77,
        ..Default::default()
    }
    .generate_pair();
    let mut rows = Vec::new();
    for rate in [0.0, 0.1, 0.3] {
        let mut oracle = NoisyOracle::new(&pair.truth, rate, 5);
        let driven = drive_session(
            &pair,
            &mut oracle,
            Phase2Strategy::Exhaustive,
            Phase3Strategy::RankedWithClosure,
        );
        rows.push(vec![
            format!("{rate:.1}"),
            driven.stats.asserted.to_string(),
            driven.stats.conflicts.to_string(),
            pair.truth.pair_count().to_string(),
        ]);
    }
    report.section(
        "B6b",
        "question count under a noisy DDA (error rate sweep)",
        &["error rate", "asserted", "conflicts", "true pairs"],
        rows,
        None,
    );
}

/// Fold metrics for one order.
struct FoldOutcome {
    questions: usize,
    final_objects: usize,
}

/// Manually fold the family in `order`, answering assertions from the
/// pairwise truths through a provenance-tracked name map.
fn run_fold(family: &sit_datagen::SchemaFamily, order: &[usize]) -> FoldOutcome {
    use std::collections::HashMap;
    let mut session = Session::new();
    let ids: Vec<sit_ecr::SchemaId> = family
        .schemas
        .iter()
        .map(|s| session.add_schema(s.clone()).unwrap())
        .collect();
    // Integrated object name -> the original concept-level names behind it.
    let mut orig: HashMap<String, Vec<String>> = HashMap::new();
    for s in &family.schemas {
        for (_, o) in s.objects() {
            orig.entry(o.name.clone()).or_default().push(o.name.clone());
        }
    }
    let truth_for = |a: &str, b: &str| -> Option<Assertion> {
        family
            .truths
            .iter()
            .flatten()
            .find_map(|gt| gt.assertion_for(a, b))
    };
    let mut questions = 0usize;
    let mut acc = ids[order[0]];
    let mut step = 0usize;
    let mut final_objects = family.schemas[order[0]].object_count();
    for &next_idx in &order[1..] {
        let next = ids[next_idx];
        // Phase 2/3 for (acc, next): ask about every object pair.
        let acc_objs: Vec<(sit_core::catalog::GObj, String)> = session
            .catalog()
            .objects_of(acc)
            .map(|g| (g, session.catalog().schema(acc).object(g.object).name.clone()))
            .collect();
        let next_objs: Vec<(sit_core::catalog::GObj, String)> = session
            .catalog()
            .objects_of(next)
            .map(|g| (g, session.catalog().schema(next).object(g.object).name.clone()))
            .collect();
        for (ga, na) in &acc_objs {
            for (gb, nb) in &next_objs {
                questions += 1;
                // Resolve through provenance: any original concept name
                // behind the accumulated object.
                let origins = orig.get(na).cloned().unwrap_or_else(|| vec![na.clone()]);
                let hit = origins.iter().find_map(|oa| truth_for(oa, nb));
                if let Some(assertion) = hit {
                    let same_key = {
                        // Declare the key attributes equivalent so the
                        // merge collapses them (phase 2 stand-in).
                        let sa_obj = session.catalog().schema(acc).object(ga.object);
                        let sb_obj = session.catalog().schema(next).object(gb.object);
                        let ka = sa_obj.key_attrs().next().map(|(id, _)| id);
                        let kb = sb_obj.key_attrs().next().map(|(id, _)| id);
                        ka.zip(kb)
                    };
                    if let Some((ka, kb)) = same_key {
                        let _ = session.declare_equivalent(
                            sit_core::catalog::GAttr::object(acc, ga.object, ka),
                            sit_core::catalog::GAttr::object(next, gb.object, kb),
                        );
                    }
                    let _ = session.assert_objects(*ga, *gb, assertion);
                }
            }
        }
        step += 1;
        let options = sit_core::integrate::IntegrationOptions {
            schema_name: Some(format!("acc_{step}")),
            ..Default::default()
        };
        let integrated = session.integrate(acc, next, &options).expect("fold integrates");
        final_objects = integrated.schema.object_count();
        // Update provenance map for the new schema's objects.
        let catalog_names: Vec<(String, Vec<String>)> = integrated
            .schema
            .objects()
            .map(|(oid, o)| {
                let members = integrated.object_origin[oid.index()].members();
                let mut names = Vec::new();
                for m in members {
                    let mname = session.catalog().schema(m.schema).object(m.object).name.clone();
                    match orig.get(&mname) {
                        Some(os) => names.extend(os.clone()),
                        None => names.push(mname),
                    }
                }
                if names.is_empty() {
                    names.push(o.name.clone());
                }
                (o.name.clone(), names)
            })
            .collect();
        for (name, names) in catalog_names {
            orig.insert(name, names);
        }
        acc = session.add_schema(integrated.schema).expect("unique name");
    }
    FoldOutcome {
        questions,
        final_objects,
    }
}

/// B7: translation throughput (relational and hierarchical → ECR).
fn b7_translation(report: &mut Report) {
    let mut rows = Vec::new();
    for tables in [10usize, 50, 200] {
        let rel = make_relational(tables);
        let start = Instant::now();
        let ecr = rel.to_ecr().expect("valid");
        let elapsed = start.elapsed();
        rows.push(vec![
            format!("relational/{tables} tables"),
            ecr.object_count().to_string(),
            ecr.relationship_count().to_string(),
            format!("{:.2?}", elapsed),
        ]);
    }
    for records in [10usize, 50, 200] {
        let hier = make_hierarchy(records);
        let start = Instant::now();
        let ecr = hier.to_ecr().expect("valid");
        let elapsed = start.elapsed();
        rows.push(vec![
            format!("hierarchical/{records} records"),
            ecr.object_count().to_string(),
            ecr.relationship_count().to_string(),
            format!("{:.2?}", elapsed),
        ]);
    }
    report.section(
        "B7",
        "schema translation throughput",
        &["source", "entity sets", "relationships", "translate time"],
        rows,
        None,
    );
}

fn make_relational(tables: usize) -> RelSchema {
    let mut r = RelSchema::new("synth");
    for i in 0..tables {
        let mut t = Table::new(format!("t{i}"))
            .col_pk(format!("t{i}_id"), "int")
            .col(format!("t{i}_data"), "char");
        if i > 0 {
            t = t.col_fk(format!("t{}_ref", i - 1), "int", format!("t{}", i - 1), format!("t{}_id", i - 1));
        }
        r.table(t);
    }
    r
}

fn make_hierarchy(records: usize) -> HierSchema {
    let mut h = HierSchema::new("synth");
    h.record(RecordType::root("r0").seq_field("r0_id", "int"));
    for i in 1..records {
        let parent = format!("r{}", (i - 1) / 2);
        h.record(
            RecordType::child(format!("r{i}"), parent)
                .seq_field(format!("r{i}_id"), "int")
                .field(format!("r{i}_data"), "char"),
        );
    }
    h
}
