//! Regenerate every figure and screen of the paper from the engine.
//!
//! ```text
//! figures            # print everything
//! figures --fig 2a   # one of: 2a 2b 2c 2d 2e 5
//! figures --screen 8 # one of: 1 7 8 9 10 11 12
//! ```
//!
//! Output is deterministic; EXPERIMENTS.md quotes it as the measured side
//! of the paper-vs-measured comparison.

use sit_core::assertion::Assertion;
use sit_core::session::Session;
use sit_ecr::{fixtures, render};
use sit_tui::app::App;
use sit_tui::event::{keys, Event};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let select = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    match (select("--fig"), select("--screen")) {
        (Some(fig), _) => print_figure(&fig),
        (_, Some(screen)) => print_screen(&screen),
        _ => {
            for fig in ["2a", "2b", "2c", "2d", "2e", "5"] {
                print_figure(fig);
            }
            for screen in ["1", "7", "8", "9", "10", "11", "12"] {
                print_screen(screen);
            }
        }
    }
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

fn print_figure(which: &str) {
    match which {
        "2a" => {
            banner("Figure 2a: identical domains (equals) -> E_Department");
            let (a, b) = fixtures::fig2a();
            let mut s = Session::new();
            let (sa, sb) = (s.add_schema(a).unwrap(), s.add_schema(b).unwrap());
            s.declare_equivalent_named("sc1", "Department", "Dname", "sc2", "Department", "Dname")
                .unwrap();
            let d1 = s.object_named("sc1", "Department").unwrap();
            let d2 = s.object_named("sc2", "Department").unwrap();
            s.assert_objects(d1, d2, Assertion::Equal).unwrap();
            print_before_after(&s, sa, sb);
        }
        "2b" => {
            banner("Figure 2b: contained domains (contains) -> Grad_student under Student");
            let (a, b) = fixtures::fig2b();
            let mut s = Session::new();
            let (sa, sb) = (s.add_schema(a).unwrap(), s.add_schema(b).unwrap());
            s.declare_equivalent_named("sc1", "Student", "Name", "sc2", "Grad_student", "Name")
                .unwrap();
            let student = s.object_named("sc1", "Student").unwrap();
            let grad = s.object_named("sc2", "Grad_student").unwrap();
            s.assert_objects(student, grad, Assertion::Contains).unwrap();
            print_before_after(&s, sa, sb);
        }
        "2c" => {
            banner("Figure 2c: overlapping domains (may be) -> D_Grad_Inst");
            let (a, b) = fixtures::fig2c();
            let mut s = Session::new();
            let (sa, sb) = (s.add_schema(a).unwrap(), s.add_schema(b).unwrap());
            s.declare_equivalent_named("sc1", "Grad_student", "Name", "sc2", "Instructor", "Name")
                .unwrap();
            let grad = s.object_named("sc1", "Grad_student").unwrap();
            let inst = s.object_named("sc2", "Instructor").unwrap();
            s.assert_objects(grad, inst, Assertion::MayBe).unwrap();
            print_before_after(&s, sa, sb);
        }
        "2d" => {
            banner("Figure 2d: disjoint but integrable -> D_Secr_Engi");
            let (a, b) = fixtures::fig2d();
            let mut s = Session::new();
            let (sa, sb) = (s.add_schema(a).unwrap(), s.add_schema(b).unwrap());
            let secr = s.object_named("sc1", "Secretary").unwrap();
            let engi = s.object_named("sc2", "Engineer").unwrap();
            s.assert_objects(secr, engi, Assertion::DisjointIntegrable)
                .unwrap();
            print_before_after(&s, sa, sb);
        }
        "2e" => {
            banner("Figure 2e: disjoint & non-integrable -> kept separate");
            let (a, b) = fixtures::fig2e();
            let mut s = Session::new();
            let (sa, sb) = (s.add_schema(a).unwrap(), s.add_schema(b).unwrap());
            let ugs = s.object_named("sc1", "Under_Grad_Student").unwrap();
            let prof = s.object_named("sc2", "Full_Professor").unwrap();
            s.assert_objects(ugs, prof, Assertion::DisjointNonIntegrable)
                .unwrap();
            print_before_after(&s, sa, sb);
        }
        "5" => {
            banner("Figure 5: integrated schema of sc1 (Fig 3) and sc2 (Fig 4)");
            let s = paper_session();
            let sa = s.catalog().by_name("sc1").unwrap();
            let sb = s.catalog().by_name("sc2").unwrap();
            println!("--- input schema sc1 (Figure 3) ---");
            print!("{}", render::render(s.catalog().schema(sa)));
            println!("--- input schema sc2 (Figure 4) ---");
            print!("{}", render::render(s.catalog().schema(sb)));
            let result = s.integrate(sa, sb, &Default::default()).unwrap();
            println!("--- integrated schema (Figure 5) ---");
            print!("{}", render::render(&result.schema));
        }
        other => eprintln!("unknown figure `{other}` (use 2a..2e or 5)"),
    }
}

fn print_before_after(s: &Session, sa: sit_ecr::SchemaId, sb: sit_ecr::SchemaId) {
    println!("--- before ---");
    print!("{}", render::render(s.catalog().schema(sa)));
    print!("{}", render::render(s.catalog().schema(sb)));
    let result = s.integrate(sa, sb, &Default::default()).unwrap();
    println!("--- after ---");
    print!("{}", render::render(&result.schema));
}

/// The paper's running session: sc1+sc2 with the Screen 7/8 inputs applied
/// through the programmatic API.
fn paper_session() -> Session {
    let mut s = Session::new();
    s.add_schema(fixtures::sc1()).unwrap();
    s.add_schema(fixtures::sc2()).unwrap();
    for (o1, a1, o2, a2) in [
        ("Student", "Name", "Grad_student", "Name"),
        ("Student", "GPA", "Grad_student", "GPA"),
        ("Student", "Name", "Faculty", "Name"),
        ("Department", "Dname", "Department", "Dname"),
        ("Majors", "Since", "Majors", "Since"),
    ] {
        s.declare_equivalent_named("sc1", o1, a1, "sc2", o2, a2).unwrap();
    }
    let at = |s: &Session, n: &str, o: &str| s.object_named(n, o).unwrap();
    let d1 = at(&s, "sc1", "Department");
    let d2 = at(&s, "sc2", "Department");
    let student = at(&s, "sc1", "Student");
    let grad = at(&s, "sc2", "Grad_student");
    let faculty = at(&s, "sc2", "Faculty");
    s.assert_objects(d1, d2, Assertion::Equal).unwrap();
    s.assert_objects(student, grad, Assertion::Contains).unwrap();
    s.assert_objects(student, faculty, Assertion::DisjointIntegrable)
        .unwrap();
    let m1 = s.rel_named("sc1", "Majors").unwrap();
    let m2 = s.rel_named("sc2", "Majors").unwrap();
    s.assert_rels(m1, m2, Assertion::Equal).unwrap();
    s
}

fn paper_session_schemas_only() -> Session {
    let mut s = Session::new();
    s.add_schema(fixtures::sc1()).unwrap();
    s.add_schema(fixtures::sc2()).unwrap();
    s
}

fn feed(app: &mut App, events: Vec<Event>) {
    for e in events {
        app.handle(e);
    }
}

/// Drive the TUI through tasks 2/4 with the paper's equivalences.
fn tui_after_equivalences() -> App {
    let mut app = App::with_session(paper_session_schemas_only());
    feed(&mut app, keys("2"));
    feed(&mut app, vec![Event::text("sc1 sc2")]);
    feed(&mut app, vec![Event::text("Student Grad_student")]);
    feed(&mut app, keys("a"));
    feed(&mut app, vec![Event::text("1 1")]);
    feed(&mut app, keys("a"));
    feed(&mut app, vec![Event::text("2 2")]);
    feed(&mut app, keys("e"));
    feed(&mut app, vec![Event::text("Student Faculty")]);
    feed(&mut app, keys("a"));
    feed(&mut app, vec![Event::text("1 1")]);
    feed(&mut app, keys("e"));
    feed(&mut app, vec![Event::text("Department Department")]);
    feed(&mut app, keys("a"));
    feed(&mut app, vec![Event::text("1 1")]);
    feed(&mut app, keys("ee"));
    feed(&mut app, keys("4"));
    feed(&mut app, vec![Event::text("sc1 sc2")]);
    feed(&mut app, vec![Event::text("Majors Majors")]);
    feed(&mut app, keys("a"));
    feed(&mut app, vec![Event::text("1 1")]);
    feed(&mut app, keys("ee"));
    app
}

/// Drive all the way to the viewer (task 6).
fn viewer_app() -> App {
    let mut app = tui_after_equivalences();
    feed(&mut app, keys("3"));
    feed(&mut app, keys("134e"));
    feed(&mut app, keys("5"));
    feed(&mut app, keys("1e"));
    feed(&mut app, keys("6"));
    app
}

fn print_screen(which: &str) {
    match which {
        "1" => {
            banner("Screen 1: main menu");
            print!("{}", App::new().render());
        }
        "7" => {
            banner("Screen 7: equivalence class creation and deletion");
            let mut app = App::with_session(paper_session_schemas_only());
            feed(&mut app, keys("2"));
            feed(&mut app, vec![Event::text("sc1 sc2")]);
            feed(&mut app, vec![Event::text("Student Grad_student")]);
            feed(&mut app, keys("a"));
            feed(&mut app, vec![Event::text("1 1")]);
            print!("{}", app.render());
        }
        "8" => {
            banner("Screen 8: assertion collection for object pairs");
            let mut app = tui_after_equivalences();
            feed(&mut app, keys("3"));
            feed(&mut app, keys("13"));
            print!("{}", app.render());
        }
        "9" => {
            banner("Screen 9: assertion conflict resolution (sc3/sc4)");
            let mut session = Session::new();
            session.add_schema(fixtures::sc3()).unwrap();
            session.add_schema(fixtures::sc4()).unwrap();
            let mut app = App::with_session(session);
            feed(&mut app, keys("2"));
            feed(&mut app, vec![Event::text("sc3 sc4")]);
            feed(&mut app, vec![Event::text("Instructor Grad_student")]);
            feed(&mut app, keys("a"));
            feed(&mut app, vec![Event::text("1 1")]);
            feed(&mut app, keys("e"));
            feed(&mut app, vec![Event::text("Instructor Student")]);
            feed(&mut app, keys("a"));
            feed(&mut app, vec![Event::text("1 1")]);
            feed(&mut app, keys("ee"));
            feed(&mut app, keys("3"));
            feed(&mut app, keys("20"));
            print!("{}", app.render());
        }
        "10" => {
            banner("Screen 10: object class screen");
            print!("{}", viewer_app().render());
        }
        "11" => {
            banner("Screen 11: category screen for Student");
            let mut app = viewer_app();
            feed(&mut app, vec![Event::text("Student")]);
            feed(&mut app, keys("c"));
            print!("{}", app.render());
        }
        "12" => {
            banner("Screens 12a/12b: component attribute screens for D_Name");
            let mut app = viewer_app();
            feed(&mut app, vec![Event::text("Student")]);
            feed(&mut app, keys("a1"));
            print!("{}", app.render());
            feed(&mut app, keys(" "));
            print!("{}", app.render());
        }
        other => eprintln!("unknown screen `{other}` (use 1, 7..12)"),
    }
}
