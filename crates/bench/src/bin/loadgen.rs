//! `loadgen` — wire-protocol load generator for `sit-server`.
//!
//! Spawns a server in-process on a loopback port, then replays
//! oracle-driven integration sessions (from `sit-datagen` ground truth)
//! over N concurrent client connections. Every request's wall-clock
//! latency is recorded; the run ends with a per-verb latency table plus
//! aggregate throughput, written to `BENCH_server.json`.
//!
//! Knobs (environment):
//!
//! * `SIT_LOADGEN_CLIENTS`  — concurrent client threads (default 4)
//! * `SIT_LOADGEN_SESSIONS` — sessions replayed per client (default 6)
//! * `SIT_LOADGEN_THREADS`  — server worker threads (default 4)

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::mpsc;
use std::thread;
use std::time::Instant;

use sit_bench::harness::{fmt_ns, json_string};
use sit_bench::table;
use sit_core::assertion::Assertion;
use sit_datagen::{GeneratedPair, GeneratorConfig};
use sit_ecr::ddl;
use sit_server::proto::Request;
use sit_server::server::{Server, ServerConfig};
use sit_server::store::StoreConfig;
use sit_server::wire::Json;
use sit_server::Client;

/// One timed request: protocol verb and its round-trip latency.
struct Timed {
    verb: &'static str,
    ns: u64,
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn workload(seed: u64) -> GeneratedPair {
    GeneratorConfig {
        seed,
        objects_per_schema: 6,
        relationships_per_schema: 2,
        ..Default::default()
    }
    .generate_pair()
}

/// Replay one full integration session over the wire, timing each call.
fn replay(client: &mut Client, pair: &GeneratedPair, out: &mut Vec<Timed>) {
    let mut call = |verb: &'static str, request: &Request| -> Json {
        let start = Instant::now();
        let response = client.call(request).expect("server reply");
        out.push(Timed {
            verb,
            ns: u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        });
        response
    };

    let opened = call("open", &Request::Open);
    let sid = opened
        .get("session")
        .and_then(Json::as_str)
        .expect("session id")
        .to_owned();
    let (na, nb) = (pair.a.name().to_owned(), pair.b.name().to_owned());
    for schema in [&pair.a, &pair.b] {
        let r = call(
            "add_schema",
            &Request::AddSchema {
                session: sid.clone(),
                ddl: ddl::print(schema),
            },
        );
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
    }
    for (oa, aa, ob, ab) in &pair.truth.attr_pairs {
        call(
            "equiv",
            &Request::Equiv {
                session: sid.clone(),
                a: format!("{na}.{oa}.{aa}"),
                b: format!("{nb}.{ob}.{ab}"),
            },
        );
    }
    for t in &pair.truth.assertions {
        // Redundant/derived assertions may come back as errors; the
        // request (and its latency) is what the load measures.
        call(
            "assert",
            &Request::Assert {
                session: sid.clone(),
                a: format!("{na}.{}", t.a),
                b: format!("{nb}.{}", t.b),
                assertion: normalize(t.assertion),
            },
        );
    }
    let integ = call(
        "integrate",
        &Request::Integrate {
            session: sid.clone(),
            a: na,
            b: nb,
            pull_up: false,
            mappings: false,
        },
    );
    assert_eq!(integ.get("ok"), Some(&Json::Bool(true)), "{integ:?}");
    call("close", &Request::Close { session: sid });
}

/// The generator's truth uses the full assertion algebra; pass them
/// through unchanged (hook kept for future filtering).
fn normalize(a: Assertion) -> Assertion {
    a
}

/// Nearest-rank percentiles of a sorted latency slice
/// (same formula as `sit_bench::harness`).
fn percentile(sorted: &[u64], q_num: usize, q_den: usize) -> u64 {
    let rank = (sorted.len() * q_num).div_ceil(q_den);
    sorted[rank.max(1) - 1]
}

fn drive(addr: SocketAddr, clients: usize, sessions: usize) -> (Vec<Timed>, f64) {
    let (tx, rx) = mpsc::channel::<Vec<Timed>>();
    let started = Instant::now();
    let mut joins = Vec::new();
    for c in 0..clients {
        let tx = tx.clone();
        joins.push(thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let mut timed = Vec::new();
            for s in 0..sessions {
                let seed = 0x10AD_0000 + (c * sessions + s) as u64;
                let pair = workload(seed);
                replay(&mut client, &pair, &mut timed);
            }
            tx.send(timed).expect("report latencies");
        }));
    }
    drop(tx);
    let mut all = Vec::new();
    for batch in rx {
        all.extend(batch);
    }
    let elapsed = started.elapsed().as_secs_f64();
    for join in joins {
        join.join().expect("client thread");
    }
    (all, elapsed)
}

fn main() {
    let clients = env_usize("SIT_LOADGEN_CLIENTS", 4);
    let sessions = env_usize("SIT_LOADGEN_SESSIONS", 6);
    let server_threads = env_usize("SIT_LOADGEN_THREADS", 4);

    let config = ServerConfig {
        threads: server_threads,
        queue_cap: 256,
        store: StoreConfig {
            max_sessions: clients * 2 + 8,
            ..Default::default()
        },
        persist: None,
    };
    let handle = Server::bind("127.0.0.1:0", config)
        .expect("bind loopback")
        .spawn()
        .expect("spawn server");
    let addr = handle.addr();
    println!("loadgen: server on {addr}, {clients} clients x {sessions} sessions");

    let (all, elapsed) = drive(addr, clients, sessions);
    handle.shutdown().expect("clean shutdown");

    let total = all.len();
    let rps = total as f64 / elapsed;

    // Per-verb and aggregate order statistics.
    let mut by_verb: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
    let mut overall: Vec<u64> = Vec::with_capacity(total);
    for t in &all {
        by_verb.entry(t.verb).or_default().push(t.ns);
        overall.push(t.ns);
    }
    overall.sort_unstable();

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for (verb, mut ns) in by_verb {
        ns.sort_unstable();
        let (min, med, p95) = (ns[0], percentile(&ns, 1, 2), percentile(&ns, 19, 20));
        rows.push(vec![
            verb.to_owned(),
            ns.len().to_string(),
            fmt_ns(min),
            fmt_ns(med),
            fmt_ns(p95),
        ]);
        results.push(format!(
            "    {{\"label\": {}, \"count\": {}, \"min_ns\": {}, \"median_ns\": {}, \"p95_ns\": {}}}",
            json_string(verb),
            ns.len(),
            min,
            med,
            p95
        ));
    }

    println!("\n## bench server ({clients} clients, {total} requests)\n");
    println!("{}", table(&["verb", "count", "min", "median", "p95"], &rows));
    println!(
        "throughput : {rps:.0} requests/sec ({total} requests in {elapsed:.3}s)\np95 overall: {}",
        fmt_ns(percentile(&overall, 19, 20))
    );

    let json = format!(
        "{{\n  \"bench\": \"server\",\n  \"clients\": {clients},\n  \"sessions_per_client\": {sessions},\n  \"server_threads\": {server_threads},\n  \"requests\": {total},\n  \"elapsed_ms\": {:.3},\n  \"requests_per_sec\": {rps:.1},\n  \"p95_ns\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        elapsed * 1e3,
        percentile(&overall, 19, 20),
        results.join(",\n")
    );
    std::fs::write("BENCH_server.json", json).expect("write BENCH_server.json");
    println!("wrote BENCH_server.json");
}
