#![warn(missing_docs)]
//! # sit-bench — shared harness for the benchmarks and report tables
//!
//! The paper's evaluation is qualitative (an interactive tool demonstrated
//! on worked examples). The benchmark suite therefore has two halves:
//!
//! * the `figures` binary regenerates every *artifact* — Figures 2a–2e and
//!   5, Screens 7–12 — from the actual engine;
//! * the harness-driven benches and the `report` binary *measure* the paper's
//!   qualitative claims on synthetic workloads (see EXPERIMENTS.md:
//!   B1–B7): DDA question counts under different strategies, ranking
//!   quality, closure/integration/OCS cost, fold-order effects, and
//!   translation throughput.
//!
//! This library holds the pieces both halves share: the oracle-driven
//! session driver ([`drive_session`]), the ranking-quality metrics, and
//! the in-tree micro-bench [`harness`] the bench targets and the `report`
//! binary record their timings with.

pub mod harness;

use sit_core::catalog::GObj;
use sit_core::error::CoreError;
use sit_core::resemblance::CandidatePair;
use sit_core::session::Session;
use sit_datagen::oracle::DdaOracle;
use sit_datagen::{GeneratedPair, GroundTruth};
use sit_ecr::SchemaId;
use sit_matcher::suggest::suggest_equivalences;
use sit_matcher::WeightedResemblance;

/// How phase 3 walks the object pairs — the strategies the
/// question-count experiment (B1) compares.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase3Strategy {
    /// Review every cross-schema object pair (integration without the
    /// tool's ranking: "very difficult, tedious and error prone").
    AllPairs,
    /// Review only the OCS-ranked candidate list (the tool's heuristic).
    Ranked,
    /// Ranked, additionally skipping pairs whose relation the closure
    /// engine has already derived (the tool's "the rest may be derived").
    RankedWithClosure,
}

/// How phase 2 finds attribute pairs to ask about.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Phase2Strategy {
    /// Ask about every domain-compatible cross-schema attribute pair.
    Exhaustive,
    /// Ask only about matcher suggestions above the threshold (the
    /// future-work syntactic enhancement).
    MatcherSuggested {
        /// Minimum weighted-resemblance score to surface a pair.
        threshold: f64,
    },
}

/// Effort and outcome counters of one driven session.
#[derive(Clone, Copy, Debug, Default)]
pub struct DriveStats {
    /// Attribute-equivalence questions asked (phase 2).
    pub attr_questions: usize,
    /// Object-pair questions asked (phase 3).
    pub object_questions: usize,
    /// Assertions recorded from answers.
    pub asserted: usize,
    /// Additional assertions the closure engine derived.
    pub derived: usize,
    /// Assertions the engine rejected as conflicting (noisy oracles).
    pub conflicts: usize,
}

impl DriveStats {
    /// Total questions the DDA had to answer.
    pub fn total_questions(&self) -> usize {
        self.attr_questions + self.object_questions
    }
}

/// The outcome of [`drive_session`].
pub struct Driven {
    /// The populated session (ready for `integrate`).
    pub session: Session,
    /// The two schema ids.
    pub ids: (SchemaId, SchemaId),
    /// Effort counters.
    pub stats: DriveStats,
}

/// Run phases 1–3 for a generated pair with the given strategies, asking
/// `oracle` every question a DDA would be asked.
pub fn drive_session(
    pair: &GeneratedPair,
    oracle: &mut dyn DdaOracle,
    phase2: Phase2Strategy,
    phase3: Phase3Strategy,
) -> Driven {
    let mut session = Session::new();
    let sa = session.add_schema(pair.a.clone()).expect("fresh session");
    let sb = session.add_schema(pair.b.clone()).expect("fresh session");
    let mut stats = DriveStats::default();

    // ---- Phase 2: attribute equivalences ----
    let candidates: Vec<(sit_core::catalog::GAttr, sit_core::catalog::GAttr)> = match phase2 {
        Phase2Strategy::Exhaustive => {
            let catalog = session.catalog();
            let attrs_a = catalog.attrs_of(sa);
            let attrs_b = catalog.attrs_of(sb);
            let mut out = Vec::new();
            for &ga in &attrs_a {
                let Ok(da) = catalog.attr(ga) else { continue };
                for &gb in &attrs_b {
                    let Ok(db) = catalog.attr(gb) else { continue };
                    if da.domain.compatible(&db.domain) {
                        out.push((ga, gb));
                    }
                }
            }
            out
        }
        Phase2Strategy::MatcherSuggested { threshold } => {
            let w = WeightedResemblance::default();
            suggest_equivalences(session.catalog(), &w, sa, sb, threshold)
                .into_iter()
                .map(|s| (s.a, s.b))
                .collect()
        }
    };
    for (ga, gb) in candidates {
        let (oa, aa) = owner_attr(&session, ga);
        let (ob, ab) = owner_attr(&session, gb);
        stats.attr_questions += 1;
        if oracle.attrs_equivalent(&oa, &aa, &ob, &ab)
            && session.declare_equivalent(ga, gb).is_ok()
        {
            // recorded
        }
    }

    // ---- Phase 3: assertions ----
    let pairs: Vec<(GObj, GObj)> = match phase3 {
        Phase3Strategy::AllPairs => {
            let catalog = session.catalog();
            catalog
                .objects_of(sa)
                .flat_map(|a| catalog.objects_of(sb).map(move |b| (a, b)))
                .collect()
        }
        Phase3Strategy::Ranked | Phase3Strategy::RankedWithClosure => session
            .candidates(sa, sb)
            .into_iter()
            .map(|p: CandidatePair<GObj>| (p.left, p.right))
            .collect(),
    };
    for (a, b) in pairs {
        if phase3 == Phase3Strategy::RankedWithClosure
            && session.object_engine().known(a, b).is_some()
        {
            continue; // already pinned by derivation: no question needed
        }
        let name_a = session.catalog().schema(a.schema).object(a.object).name.clone();
        let name_b = session.catalog().schema(b.schema).object(b.object).name.clone();
        stats.object_questions += 1;
        if let Some(assertion) = oracle.object_assertion(&name_a, &name_b) {
            match session.assert_objects(a, b, assertion) {
                Ok(derived) => {
                    stats.asserted += 1;
                    stats.derived += derived.len();
                }
                Err(CoreError::Conflict(_)) => stats.conflicts += 1,
                Err(_) => {}
            }
        }
    }

    Driven {
        session,
        ids: (sa, sb),
        stats,
    }
}

fn owner_attr(session: &Session, g: sit_core::catalog::GAttr) -> (String, String) {
    let catalog = session.catalog();
    let schema = catalog.schema(g.schema);
    let owner = schema.owner_name(g.owner).unwrap_or("?").to_owned();
    let attr = schema
        .attr_of(g.owner, g.attr)
        .map(|a| a.name.clone())
        .unwrap_or_default();
    (owner, attr)
}

/// Ranking-quality metrics of a candidate list against ground truth.
#[derive(Clone, Copy, Debug, Default)]
pub struct RankingQuality {
    /// Fraction of the top-`k` pairs that truly correspond (`k` = number
    /// of true pairs).
    pub precision_at_k: f64,
    /// Fraction of true pairs appearing anywhere in the list.
    pub recall: f64,
    /// Mean reciprocal rank of the true pairs.
    pub mrr: f64,
}

/// Score an ordered candidate list (by object display names) against the
/// truth.
pub fn ranking_quality(
    session: &Session,
    ranked: &[CandidatePair<GObj>],
    truth: &GroundTruth,
) -> RankingQuality {
    let catalog = session.catalog();
    let total_true = truth.pair_count();
    if total_true == 0 {
        return RankingQuality::default();
    }
    let is_true = |p: &CandidatePair<GObj>| {
        let a = &catalog.schema(p.left.schema).object(p.left.object).name;
        let b = &catalog.schema(p.right.schema).object(p.right.object).name;
        truth.assertion_for(a, b).is_some()
    };
    let k = total_true.min(ranked.len());
    let hits_at_k = ranked[..k].iter().filter(|p| is_true(p)).count();
    let hits_total = ranked.iter().filter(|p| is_true(p)).count();
    let mut mrr = 0.0;
    let mut seen = 0usize;
    for (i, p) in ranked.iter().enumerate() {
        if is_true(p) {
            mrr += 1.0 / (i + 1) as f64;
            seen += 1;
        }
    }
    RankingQuality {
        precision_at_k: if k == 0 { 0.0 } else { hits_at_k as f64 / k as f64 },
        recall: hits_total as f64 / total_true as f64,
        mrr: if seen == 0 { 0.0 } else { mrr / seen as f64 },
    }
}

/// A random-order baseline for the ranking comparison: the same candidate
/// universe (all cross pairs), shuffled deterministically.
pub fn random_pairs(session: &Session, sa: SchemaId, sb: SchemaId, seed: u64) -> Vec<CandidatePair<GObj>> {
    let catalog = session.catalog();
    let mut out: Vec<CandidatePair<GObj>> = catalog
        .objects_of(sa)
        .flat_map(|a| {
            catalog.objects_of(sb).map(move |b| CandidatePair {
                left: a,
                right: b,
                equivalent: 0,
                ratio: 0.0,
            })
        })
        .collect();
    let mut rng = sit_prng::Xoshiro256pp::seed_from_u64(seed);
    rng.shuffle(&mut out);
    out
}

/// Render a plain-text table (the report binary's output format).
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_owned()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sit_datagen::oracle::GroundTruthOracle;
    use sit_datagen::GeneratorConfig;

    fn small_pair() -> GeneratedPair {
        GeneratorConfig {
            objects_per_schema: 6,
            overlap: 0.5,
            ..Default::default()
        }
        .generate_pair()
    }

    #[test]
    fn ranked_strategy_asks_fewer_questions_than_all_pairs() {
        let pair = small_pair();
        let mut o1 = GroundTruthOracle::new(&pair.truth);
        let all = drive_session(
            &pair,
            &mut o1,
            Phase2Strategy::Exhaustive,
            Phase3Strategy::AllPairs,
        );
        let mut o2 = GroundTruthOracle::new(&pair.truth);
        let ranked = drive_session(
            &pair,
            &mut o2,
            Phase2Strategy::Exhaustive,
            Phase3Strategy::Ranked,
        );
        assert!(
            ranked.stats.object_questions <= all.stats.object_questions,
            "{} <= {}",
            ranked.stats.object_questions,
            all.stats.object_questions
        );
        // Both find the true assertions.
        assert_eq!(all.stats.asserted, pair.truth.pair_count());
        assert!(ranked.stats.asserted >= 1);
    }

    #[test]
    fn matcher_suggestions_cut_attribute_questions() {
        let pair = small_pair();
        let mut o1 = GroundTruthOracle::new(&pair.truth);
        let exhaustive = drive_session(
            &pair,
            &mut o1,
            Phase2Strategy::Exhaustive,
            Phase3Strategy::Ranked,
        );
        let mut o2 = GroundTruthOracle::new(&pair.truth);
        let suggested = drive_session(
            &pair,
            &mut o2,
            Phase2Strategy::MatcherSuggested { threshold: 0.55 },
            Phase3Strategy::Ranked,
        );
        assert!(
            suggested.stats.attr_questions < exhaustive.stats.attr_questions,
            "{} < {}",
            suggested.stats.attr_questions,
            exhaustive.stats.attr_questions
        );
    }

    #[test]
    fn ranking_beats_random_on_quality() {
        let pair = small_pair();
        let mut oracle = GroundTruthOracle::new(&pair.truth);
        let driven = drive_session(
            &pair,
            &mut oracle,
            Phase2Strategy::Exhaustive,
            Phase3Strategy::Ranked,
        );
        let (sa, sb) = driven.ids;
        // Fresh session replays just phase 2, so the ranking reflects the
        // equivalences without assertions.
        let ranked = driven.session.candidates(sa, sb);
        let q_ranked = ranking_quality(&driven.session, &ranked, &pair.truth);
        let random = random_pairs(&driven.session, sa, sb, 99);
        let q_random = ranking_quality(&driven.session, &random, &pair.truth);
        assert!(q_ranked.precision_at_k >= q_random.precision_at_k);
        assert!(q_ranked.mrr >= q_random.mrr);
        assert!(q_ranked.recall > 0.9, "{q_ranked:?}");
    }

    #[test]
    fn closure_skips_derivable_questions() {
        // With in-place categories, (A.X, B.Senior_X) is derivable from
        // A.X ≡ B.X plus B's own category edge — ranked+closure must ask
        // strictly fewer questions than plain ranked.
        let pair = GeneratorConfig {
            objects_per_schema: 10,
            overlap: 0.8,
            contained_frac: 0.0,
            mayby_frac: 0.0,
            category_frac: 1.0,
            ..Default::default()
        }
        .generate_pair();
        let mut o1 = GroundTruthOracle::new(&pair.truth);
        let ranked = drive_session(
            &pair,
            &mut o1,
            Phase2Strategy::Exhaustive,
            Phase3Strategy::Ranked,
        );
        let mut o2 = GroundTruthOracle::new(&pair.truth);
        let closure = drive_session(
            &pair,
            &mut o2,
            Phase2Strategy::Exhaustive,
            Phase3Strategy::RankedWithClosure,
        );
        assert!(
            closure.stats.object_questions < ranked.stats.object_questions,
            "{} < {}",
            closure.stats.object_questions,
            ranked.stats.object_questions
        );
        // Both end with the same pinned knowledge for the true pairs.
        assert!(closure.stats.asserted + closure.stats.derived >= closure.stats.asserted);
    }

    #[test]
    fn driven_session_integrates_cleanly() {
        let pair = small_pair();
        let mut oracle = GroundTruthOracle::new(&pair.truth);
        let driven = drive_session(
            &pair,
            &mut oracle,
            Phase2Strategy::Exhaustive,
            Phase3Strategy::RankedWithClosure,
        );
        let (sa, sb) = driven.ids;
        let result = driven.session.integrate(sa, sb, &Default::default());
        assert!(result.is_ok(), "{result:?}");
    }

    #[test]
    fn table_renders_aligned() {
        let t = table(
            &["strategy", "questions"],
            &[
                vec!["all-pairs".into(), "100".into()],
                vec!["ranked".into(), "12".into()],
            ],
        );
        assert!(t.contains("strategy"));
        assert!(t.lines().count() == 4);
    }
}
