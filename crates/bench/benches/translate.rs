//! B7 — relational and hierarchical schema translation throughput.

use sit_bench::harness::Bench;
use sit_translate::{HierSchema, RecordType, RelSchema, Table};

fn relational(tables: usize) -> RelSchema {
    let mut r = RelSchema::new("synth");
    for i in 0..tables {
        let mut t = Table::new(format!("t{i}"))
            .col_pk(format!("t{i}_id"), "int")
            .col(format!("t{i}_data"), "char");
        if i > 0 {
            t = t.col_fk(
                format!("t{}_ref", i - 1),
                "int",
                format!("t{}", i - 1),
                format!("t{}_id", i - 1),
            );
        }
        r.table(t);
    }
    r
}

fn hierarchy(records: usize) -> HierSchema {
    let mut h = HierSchema::new("synth");
    h.record(RecordType::root("r0").seq_field("r0_id", "int"));
    for i in 1..records {
        let parent = format!("r{}", (i - 1) / 2);
        h.record(
            RecordType::child(format!("r{i}"), parent)
                .seq_field(format!("r{i}_id"), "int"),
        );
    }
    h
}

fn main() {
    let mut bench = Bench::new("translate").with_counts(2, 20);
    for n in [10usize, 50, 200] {
        let rel = relational(n);
        bench.run(format!("relational/{n}"), || rel.to_ecr().unwrap());
        let hier = hierarchy(n);
        bench.run(format!("hierarchical/{n}"), || hier.to_ecr().unwrap());
    }
    bench.finish().expect("write BENCH_translate.json");
}
