//! B4 — full integration (phase 4) cost over size and overlap.

use sit_bench::harness::Bench;
use sit_bench::{drive_session, Phase2Strategy, Phase3Strategy};
use sit_core::integrate::IntegrationOptions;
use sit_datagen::oracle::GroundTruthOracle;
use sit_datagen::GeneratorConfig;

fn main() {
    let mut bench = Bench::new("integration").with_counts(2, 20);
    for (objects, overlap) in [(8usize, 0.5), (16, 0.5), (16, 0.25), (16, 0.75)] {
        let pair = GeneratorConfig {
            objects_per_schema: objects,
            overlap,
            seed: 11,
            ..Default::default()
        }
        .generate_pair();
        let mut oracle = GroundTruthOracle::new(&pair.truth);
        let driven = drive_session(
            &pair,
            &mut oracle,
            Phase2Strategy::Exhaustive,
            Phase3Strategy::RankedWithClosure,
        );
        let id = format!("{objects}obj_{overlap}ov");
        bench.run(format!("integrate/{id}"), || {
            driven
                .session
                .integrate(driven.ids.0, driven.ids.1, &IntegrationOptions::default())
                .unwrap()
        });
        // Ablation: pull-up of common attributes to derived superclasses.
        let options = IntegrationOptions {
            pull_up_common_attrs: true,
            ..Default::default()
        };
        bench.run(format!("integrate_pull_up/{id}"), || {
            driven
                .session
                .integrate(driven.ids.0, driven.ids.1, &options)
                .unwrap()
        });
    }
    bench.finish().expect("write BENCH_integration.json");
}
