//! B4 — full integration (phase 4) cost over size and overlap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sit_bench::{drive_session, Phase2Strategy, Phase3Strategy};
use sit_core::integrate::IntegrationOptions;
use sit_datagen::oracle::GroundTruthOracle;
use sit_datagen::GeneratorConfig;

fn bench_integration(c: &mut Criterion) {
    let mut group = c.benchmark_group("integration");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (objects, overlap) in [(8usize, 0.5), (16, 0.5), (16, 0.25), (16, 0.75)] {
        let pair = GeneratorConfig {
            objects_per_schema: objects,
            overlap,
            seed: 11,
            ..Default::default()
        }
        .generate_pair();
        let mut oracle = GroundTruthOracle::new(&pair.truth);
        let driven = drive_session(
            &pair,
            &mut oracle,
            Phase2Strategy::Exhaustive,
            Phase3Strategy::RankedWithClosure,
        );
        let id = format!("{objects}obj_{overlap}ov");
        group.bench_with_input(BenchmarkId::new("integrate", &id), &id, |b, _| {
            b.iter(|| {
                driven
                    .session
                    .integrate(driven.ids.0, driven.ids.1, &IntegrationOptions::default())
                    .unwrap()
            });
        });
        // Ablation: pull-up of common attributes to derived superclasses.
        group.bench_with_input(BenchmarkId::new("integrate_pull_up", &id), &id, |b, _| {
            let options = IntegrationOptions {
                pull_up_common_attrs: true,
                ..Default::default()
            };
            b.iter(|| {
                driven
                    .session
                    .integrate(driven.ids.0, driven.ids.1, &options)
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_integration);
criterion_main!(benches);
