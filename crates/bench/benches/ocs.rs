//! B5 — ACS→OCS matrix derivation cost.

use sit_bench::harness::Bench;
use sit_bench::{drive_session, Phase2Strategy, Phase3Strategy};
use sit_core::resemblance::{ocs_matrix, ocs_sparse};
use sit_datagen::oracle::GroundTruthOracle;
use sit_datagen::GeneratorConfig;

fn main() {
    let mut bench = Bench::new("ocs").with_counts(2, 20);
    for objects in [8usize, 16, 32] {
        let pair = GeneratorConfig {
            objects_per_schema: objects,
            overlap: 0.5,
            seed: 3,
            ..Default::default()
        }
        .generate_pair();
        let mut oracle = GroundTruthOracle::new(&pair.truth);
        let driven = drive_session(
            &pair,
            &mut oracle,
            Phase2Strategy::Exhaustive,
            Phase3Strategy::Ranked,
        );
        let (sa, sb) = driven.ids;
        bench.run(format!("derive/{objects}"), || {
            ocs_matrix(
                driven.session.catalog(),
                driven.session.equivalences(),
                sa,
                sb,
            )
        });
        // Ablation: class-walk accumulation instead of the dense
        // object-pair scan.
        bench.run(format!("derive_sparse/{objects}"), || {
            ocs_sparse(
                driven.session.catalog(),
                driven.session.equivalences(),
                sa,
                sb,
            )
        });
        bench.run(format!("ranked_pairs/{objects}"), || {
            driven.session.candidates(sa, sb)
        });
    }
    bench.finish().expect("write BENCH_ocs.json");
}
