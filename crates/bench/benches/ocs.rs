//! B5 — ACS→OCS matrix derivation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sit_bench::{drive_session, Phase2Strategy, Phase3Strategy};
use sit_core::resemblance::{ocs_matrix, ocs_sparse};
use sit_datagen::oracle::GroundTruthOracle;
use sit_datagen::GeneratorConfig;

fn bench_ocs(c: &mut Criterion) {
    let mut group = c.benchmark_group("ocs");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for objects in [8usize, 16, 32] {
        let pair = GeneratorConfig {
            objects_per_schema: objects,
            overlap: 0.5,
            seed: 3,
            ..Default::default()
        }
        .generate_pair();
        let mut oracle = GroundTruthOracle::new(&pair.truth);
        let driven = drive_session(
            &pair,
            &mut oracle,
            Phase2Strategy::Exhaustive,
            Phase3Strategy::Ranked,
        );
        let (sa, sb) = driven.ids;
        group.bench_with_input(BenchmarkId::new("derive", objects), &objects, |b, _| {
            b.iter(|| {
                ocs_matrix(
                    driven.session.catalog(),
                    driven.session.equivalences(),
                    sa,
                    sb,
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("derive_sparse", objects), &objects, |b, _| {
            // Ablation: class-walk accumulation instead of the dense
            // object-pair scan.
            b.iter(|| {
                ocs_sparse(
                    driven.session.catalog(),
                    driven.session.equivalences(),
                    sa,
                    sb,
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("ranked_pairs", objects), &objects, |b, _| {
            b.iter(|| driven.session.candidates(sa, sb));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ocs);
criterion_main!(benches);
