//! B10 — the price of durability: mutation throughput under each
//! journal fsync policy against the in-memory (no persistence)
//! baseline, and recovery time as a function of journal length.
//!
//! All durable variants run over `MemStorage` so the numbers isolate
//! the persistence *layer* (record encoding, CRC, write-ahead
//! ordering, policy bookkeeping) from disk hardware; one
//! `DirStorage` variant is included so the real-fsync cost is on
//! record too. Snapshots are disabled for the throughput labels
//! (`snapshot_every: 0`) so every label measures pure journal cost;
//! the `recover/*` labels measure `Service::with_persistence` doing a
//! full journal replay through the service's own dispatch.

use std::sync::Arc;

use sit_bench::harness::Bench;
use sit_datagen::GeneratorConfig;
use sit_ecr::ddl;
use sit_obs::clock::MonotonicClock;
use sit_server::proto::Request;
use sit_server::storage::{DirStorage, MemStorage, Storage};
use sit_server::store::StoreConfig;
use sit_server::{FsyncPolicy, PersistConfig, Service};

const MUTATIONS: usize = 64;

/// Production-shaped inputs: the same generated schema family the
/// concurrency and chaos suites use (6 objects, 2 relationships per
/// schema), so each journaled verb carries a realistic engine cost —
/// measuring the journal against toy two-entity schemas would
/// overstate its relative overhead.
struct Workload {
    ddl_a: String,
    ddl_b: String,
    equiv: String,
    unequiv: String,
}

fn workload() -> Workload {
    let pair = GeneratorConfig {
        seed: 0,
        objects_per_schema: 6,
        relationships_per_schema: 2,
        ..Default::default()
    }
    .generate_pair();
    let (oa, aa, ob, ab) = pair.truth.attr_pairs[0].clone();
    let (na, nb) = (pair.a.name().to_owned(), pair.b.name().to_owned());
    let a = format!("{na}.{oa}.{aa}");
    let b = format!("{nb}.{ob}.{ab}");
    Workload {
        ddl_a: ddl::print(&pair.a),
        ddl_b: ddl::print(&pair.b),
        equiv: Request::Equiv {
            session: "1".into(),
            a: a.clone(),
            b: b.clone(),
        }
        .to_json()
        .encode(),
        unequiv: Request::Unequiv {
            session: "1".into(),
            a,
        }
        .to_json()
        .encode(),
    }
}

fn durable(storage: Arc<dyn Storage>, fsync: FsyncPolicy) -> Service {
    Service::with_persistence(
        StoreConfig::default(),
        Arc::new(MonotonicClock::new()),
        storage,
        PersistConfig {
            fsync,
            snapshot_every: 0,
        },
    )
    .expect("recovery over fresh storage")
}

fn ack(service: &Service, frame: &str) {
    let out = service.handle_line(frame).frame;
    assert!(out.contains("\"ok\":true"), "{frame} -> {out}");
}

/// Open a session and load the two bench schemas.
fn prime(service: &Service, w: &Workload) {
    ack(service, r#"{"op":"open"}"#);
    let add = |ddl: &str| {
        Request::AddSchema {
            session: "1".into(),
            ddl: ddl.into(),
        }
        .to_json()
        .encode()
    };
    ack(service, &add(&w.ddl_a));
    ack(service, &add(&w.ddl_b));
}

/// The measured unit: `MUTATIONS` journaled verbs (equiv/unequiv
/// pairs, so session state stays bounded across samples).
fn mutate(service: &Service, w: &Workload) {
    for _ in 0..MUTATIONS / 2 {
        ack(service, &w.equiv);
        ack(service, &w.unequiv);
    }
}

/// A MemStorage holding one session whose journal has `records`
/// equiv/unequiv entries (plus the two add_schema records).
fn journal_of(records: usize, w: &Workload) -> Arc<MemStorage> {
    let mem = Arc::new(MemStorage::new());
    let service = durable(Arc::clone(&mem) as Arc<dyn Storage>, FsyncPolicy::Never);
    prime(&service, w);
    for _ in 0..records / 2 {
        ack(&service, &w.equiv);
        ack(&service, &w.unequiv);
    }
    mem
}

fn main() {
    let mut bench = Bench::new("persist").with_counts(3, 30);
    let w = workload();

    bench.run_with_setup(
        format!("mutate_x{MUTATIONS}/baseline_no_persist"),
        || {
            let service = Service::new(StoreConfig::default());
            prime(&service, &w);
            service
        },
        |service| mutate(&service, &w),
    );
    for (label, fsync) in [
        ("fsync_never", FsyncPolicy::Never),
        ("fsync_every_8", FsyncPolicy::EveryN(8)),
        ("fsync_always", FsyncPolicy::Always),
    ] {
        bench.run_with_setup(
            format!("mutate_x{MUTATIONS}/mem_{label}"),
            || {
                let service = durable(Arc::new(MemStorage::new()), fsync);
                prime(&service, &w);
                service
            },
            |service| mutate(&service, &w),
        );
    }

    // Real directory, real fsync: the honest price of `--fsync always`
    // on actual hardware.
    let dir = std::env::temp_dir().join(format!("sit_bench_persist_{}", std::process::id()));
    bench.run_with_setup(
        format!("mutate_x{MUTATIONS}/dir_fsync_always"),
        || {
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("bench data dir");
            let storage = DirStorage::open(&dir).expect("open bench dir");
            let service = durable(Arc::new(storage), FsyncPolicy::Always);
            prime(&service, &w);
            service
        },
        |service| mutate(&service, &w),
    );
    let _ = std::fs::remove_dir_all(&dir);

    // Recovery cost vs journal length: a fresh service over an
    // existing journal replays every record through dispatch.
    for records in [100usize, 400, 1600] {
        bench.run_with_setup(
            format!("recover/records_{records}"),
            || journal_of(records, &w),
            |mem| durable(mem as Arc<dyn Storage>, FsyncPolicy::Never),
        );
    }

    bench.finish().expect("write BENCH_persist.json");
}
