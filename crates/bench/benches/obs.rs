//! B9 — tracing overhead: the ping round trip through `serve_connection`
//! with the span ring live against the same loop with the tracer
//! disabled, plus the micro-costs underneath (span create/drop both
//! ways, histogram record, Chrome export). The ≤5% target on the ping
//! round trip sits alongside the fault decorator's ~3% (B8): both
//! decorators together must stay cheap enough to leave on.

use std::sync::Arc;

use sit_bench::harness::Bench;
use sit_obs::metrics::Histogram;
use sit_obs::trace::{self, Tracer};
use sit_obs::MonotonicClock;
use sit_server::pool::ThreadPool;
use sit_server::server::{Server, ServerConfig};
use sit_server::store::StoreConfig;
use sit_server::wire::{FrameBuffer, Framed};
use sit_server::{serve_connection, sim_pair, Client, Service, Transport};

const PINGS: usize = 32;

/// One connection through `serve_connection`: write `PINGS` ping frames,
/// read every response, hang up (the B8 shape, minus fault injection).
fn roundtrip(service: &Arc<Service>, pool: &Arc<ThreadPool>) -> usize {
    let (client_end, server_end) = sim_pair();
    let service_for_conn = Arc::clone(service);
    let pool = Arc::clone(pool);
    let server =
        std::thread::spawn(move || serve_connection(server_end, &service_for_conn, &pool));
    let mut conn = client_end;
    let mut frames = FrameBuffer::new();
    let mut chunk = [0u8; 1024];
    let mut received = 0usize;
    let mut responses = 0usize;
    for _ in 0..PINGS {
        conn.write_all(b"{\"op\":\"ping\"}\n").expect("write ping");
    }
    while responses < PINGS {
        let n = conn.read(&mut chunk).expect("read responses");
        assert!(n > 0, "server hung up early");
        received += n;
        frames.push(&chunk[..n]);
        while let Some(Framed::Line(_)) = frames.next_frame() {
            responses += 1;
        }
    }
    drop(conn);
    server.join().expect("serving thread");
    received
}

fn main() {
    let mut bench = Bench::new("obs").with_counts(2, 20);
    let service = Arc::new(Service::new(StoreConfig::default()));
    let pool = Arc::new(ThreadPool::new(2, 64));

    service.tracer().set_enabled(true);
    bench.run(format!("traced/ping_x{PINGS}"), || {
        roundtrip(&service, &pool)
    });
    service.tracer().set_enabled(false);
    bench.run(format!("untraced/ping_x{PINGS}"), || {
        roundtrip(&service, &pool)
    });
    service.tracer().set_enabled(true);

    // Dispatch without the transport: the per-request span cost alone.
    bench.run("handle_line/ping_traced", || {
        let mut bytes = 0usize;
        for _ in 0..PINGS {
            bytes += service.handle_line("{\"op\":\"ping\"}").frame.len();
        }
        bytes
    });
    service.tracer().set_enabled(false);
    bench.run("handle_line/ping_untraced", || {
        let mut bytes = 0usize;
        for _ in 0..PINGS {
            bytes += service.handle_line("{\"op\":\"ping\"}").frame.len();
        }
        bytes
    });

    // The same comparison over loopback TCP: the round trip a client
    // actually experiences, where the span cost is amortized against
    // real socket latency.
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let tcp_service = server.service();
    let server = server.spawn().expect("spawn server");
    let mut client = Client::connect(addr).expect("connect");
    bench.run(format!("tcp_traced/ping_x{PINGS}"), || {
        let mut bytes = 0usize;
        for _ in 0..PINGS {
            bytes += client.call_raw("{\"op\":\"ping\"}").expect("ping").len();
        }
        bytes
    });
    tcp_service.tracer().set_enabled(false);
    bench.run(format!("tcp_untraced/ping_x{PINGS}"), || {
        let mut bytes = 0usize;
        for _ in 0..PINGS {
            bytes += client.call_raw("{\"op\":\"ping\"}").expect("ping").len();
        }
        bytes
    });
    drop(client);
    server.shutdown().expect("server shutdown");

    // Micro: span create/drop against the thread-local stack, with the
    // ring live and with recording off.
    let tracer = Tracer::new(Arc::new(MonotonicClock::new()), 4096);
    let _current = trace::set_current(&tracer);
    bench.run("span/enabled_x1000", || {
        for _ in 0..1000 {
            let _span = trace::span("bench");
        }
        tracer.len()
    });
    tracer.set_enabled(false);
    bench.run("span/disabled_x1000", || {
        for _ in 0..1000 {
            let _span = trace::span("bench");
        }
        tracer.len()
    });
    tracer.set_enabled(true);

    let histogram = Histogram::new();
    bench.run("histogram/record_x1000", || {
        for i in 0..1000u64 {
            histogram.record(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        histogram.count()
    });

    tracer.clear();
    for i in 0..4096u64 {
        let mut span = tracer.span("fill");
        span.set_arg("i", i.to_string());
    }
    bench.run("chrome_export/4096_events", || {
        tracer.export_chrome().len()
    });

    pool.shutdown();
    bench.finish().expect("write BENCH_obs.json");
}
