//! B6 — n-ary fold cost and order selection cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sit_datagen::GeneratorConfig;
use sit_matcher::{best_integration_order, schema_resemblance, WeightedResemblance};

fn bench_nary(c: &mut Criterion) {
    let mut group = c.benchmark_group("nary_order");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [3usize, 5, 8] {
        let family = GeneratorConfig {
            objects_per_schema: 8,
            overlap: 0.5,
            seed: 23,
            ..Default::default()
        }
        .generate_family(n);
        let w = WeightedResemblance::default();
        let refs: Vec<&sit_ecr::Schema> = family.schemas.iter().collect();
        group.bench_with_input(BenchmarkId::new("order_selection", n), &n, |b, _| {
            b.iter(|| best_integration_order(&w, &refs));
        });
        group.bench_with_input(BenchmarkId::new("pairwise_resemblance", n), &n, |b, _| {
            b.iter(|| schema_resemblance(&w, refs[0], refs[1 % refs.len()]));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nary);
criterion_main!(benches);
