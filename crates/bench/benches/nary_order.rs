//! B6 — n-ary fold cost and order selection cost.

use sit_bench::harness::Bench;
use sit_datagen::GeneratorConfig;
use sit_matcher::{best_integration_order, schema_resemblance, WeightedResemblance};

fn main() {
    let mut bench = Bench::new("nary_order").with_counts(2, 20);
    for n in [3usize, 5, 8] {
        let family = GeneratorConfig {
            objects_per_schema: 8,
            overlap: 0.5,
            seed: 23,
            ..Default::default()
        }
        .generate_family(n);
        let w = WeightedResemblance::default();
        let refs: Vec<&sit_ecr::Schema> = family.schemas.iter().collect();
        bench.run(format!("order_selection/{n}"), || {
            best_integration_order(&w, &refs)
        });
        bench.run(format!("pairwise_resemblance/{n}"), || {
            schema_resemblance(&w, refs[0], refs[1 % refs.len()])
        });
    }
    bench.finish().expect("write BENCH_nary_order.json");
}
