//! B1 — end-to-end phase 2+3 drive cost per strategy (the question-count
//! *numbers* are printed by the `report` binary; this measures the time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sit_bench::{drive_session, Phase2Strategy, Phase3Strategy};
use sit_datagen::oracle::GroundTruthOracle;
use sit_datagen::GeneratorConfig;

fn bench_drive(c: &mut Criterion) {
    let mut group = c.benchmark_group("question_count");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    let pair = GeneratorConfig {
        objects_per_schema: 16,
        overlap: 0.5,
        seed: 7,
        ..Default::default()
    }
    .generate_pair();
    for (label, strategy) in [
        ("all_pairs", Phase3Strategy::AllPairs),
        ("ranked", Phase3Strategy::Ranked),
        ("ranked_closure", Phase3Strategy::RankedWithClosure),
    ] {
        group.bench_with_input(BenchmarkId::new("drive", label), &strategy, |b, &s| {
            b.iter(|| {
                let mut oracle = GroundTruthOracle::new(&pair.truth);
                drive_session(&pair, &mut oracle, Phase2Strategy::Exhaustive, s)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_drive);
criterion_main!(benches);
