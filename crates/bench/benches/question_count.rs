//! B1 — end-to-end phase 2+3 drive cost per strategy (the question-count
//! *numbers* are printed by the `report` binary; this measures the time).

use sit_bench::harness::Bench;
use sit_bench::{drive_session, Phase2Strategy, Phase3Strategy};
use sit_datagen::oracle::GroundTruthOracle;
use sit_datagen::GeneratorConfig;

fn main() {
    let mut bench = Bench::new("question_count").with_counts(2, 20);
    let pair = GeneratorConfig {
        objects_per_schema: 16,
        overlap: 0.5,
        seed: 7,
        ..Default::default()
    }
    .generate_pair();
    for (label, strategy) in [
        ("all_pairs", Phase3Strategy::AllPairs),
        ("ranked", Phase3Strategy::Ranked),
        ("ranked_closure", Phase3Strategy::RankedWithClosure),
    ] {
        bench.run(format!("drive/{label}"), || {
            let mut oracle = GroundTruthOracle::new(&pair.truth);
            drive_session(&pair, &mut oracle, Phase2Strategy::Exhaustive, strategy)
        });
    }
    bench.finish().expect("write BENCH_question_count.json");
}
