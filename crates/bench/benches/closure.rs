//! B3 — cost of assertion propagation and conflict detection
//! (the closure engine behind Screens 8/9).

use sit_bench::harness::Bench;
use sit_core::assertion::{Assertion, Rel5, Rel5Set};
use sit_core::closure::{naive_path_consistency, AssertionEngine};

fn chain(n: u32) -> AssertionEngine<u32> {
    let mut e = AssertionEngine::new();
    for i in 0..n {
        e.assert(i, i + 1, Assertion::ContainedIn, |x| format!("n{x}"))
            .unwrap();
    }
    e
}

fn main() {
    let mut bench = Bench::new("closure").with_counts(2, 20);
    for n in [25u32, 50, 100] {
        bench.run(format!("containment_chain/{n}"), || chain(n));
        let e = chain(n);
        bench.run_with_setup(
            format!("conflict_check/{n}"),
            || e.clone(),
            |mut e| {
                let _ = e.assert(n, 0, Assertion::ContainedIn, |x| format!("n{x}"));
            },
        );
        // Ablation: full fixpoint recomputation over all triples vs the
        // incremental worklist.
        let facts: Vec<(u32, u32, Rel5Set)> = (0..n)
            .map(|i| (i, i + 1, Rel5Set::only(Rel5::Pp)))
            .collect();
        bench.run(format!("naive_recompute/{n}"), || {
            naive_path_consistency(&facts).unwrap()
        });
        bench.run(format!("star_equalities/{n}"), || {
            let mut e = AssertionEngine::new();
            for i in 1..=n {
                e.assert(0, i, Assertion::Equal, |x| format!("n{x}")).unwrap();
            }
            e
        });
    }
    bench.finish().expect("write BENCH_closure.json");
}
