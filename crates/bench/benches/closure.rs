//! B3 — cost of assertion propagation and conflict detection
//! (the closure engine behind Screens 8/9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sit_core::assertion::{Assertion, Rel5, Rel5Set};
use sit_core::closure::{naive_path_consistency, AssertionEngine};

fn chain(n: u32) -> AssertionEngine<u32> {
    let mut e = AssertionEngine::new();
    for i in 0..n {
        e.assert(i, i + 1, Assertion::ContainedIn, |x| format!("n{x}"))
            .unwrap();
    }
    e
}

fn bench_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("closure");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [25u32, 50, 100] {
        group.bench_with_input(BenchmarkId::new("containment_chain", n), &n, |b, &n| {
            b.iter(|| chain(n));
        });
        group.bench_with_input(BenchmarkId::new("conflict_check", n), &n, |b, &n| {
            let e = chain(n);
            b.iter_batched(
                || e.clone(),
                |mut e| {
                    let _ = e.assert(n, 0, Assertion::ContainedIn, |x| format!("n{x}"));
                },
                criterion::BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("naive_recompute", n), &n, |b, &n| {
            // Ablation: full fixpoint recomputation over all triples vs
            // the incremental worklist.
            let facts: Vec<(u32, u32, Rel5Set)> = (0..n)
                .map(|i| (i, i + 1, Rel5Set::only(Rel5::Pp)))
                .collect();
            b.iter(|| naive_path_consistency(&facts).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("star_equalities", n), &n, |b, &n| {
            b.iter(|| {
                let mut e = AssertionEngine::new();
                for i in 1..=n {
                    e.assert(0, i, Assertion::Equal, |x| format!("n{x}")).unwrap();
                }
                e
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_closure);
criterion_main!(benches);
