//! B8 — serving-loop transport cost: the in-memory simulated transport
//! against the same loop under fault injection, plus raw line
//! reassembly. Quantifies what the chaos harness's decorator costs, so
//! chaos-suite wall-times can be read as scenario work rather than
//! harness overhead.

use std::sync::Arc;

use sit_bench::harness::Bench;
use sit_server::fault::{EventLog, FaultConfig, FaultPlan, FaultedTransport, VirtualClock};
use sit_server::pool::ThreadPool;
use sit_server::store::StoreConfig;
use sit_server::wire::{FrameBuffer, Framed};
use sit_server::{serve_connection, sim_pair, Service, Transport};

const PINGS: usize = 32;

/// Drive one connection through `serve_connection`: write `PINGS` ping
/// frames, read every response, hang up. Returns bytes received.
fn roundtrip(service: &Arc<Service>, pool: &Arc<ThreadPool>, fault_seed: Option<u64>) -> usize {
    let (client_end, server_end) = sim_pair();
    let service = Arc::clone(service);
    let pool = Arc::clone(pool);
    let server = std::thread::spawn(move || match fault_seed {
        Some(seed) => {
            let cfg = FaultConfig {
                min_segment: 4,
                max_segment: 48,
                delay_percent: 25,
                ..FaultConfig::default()
            };
            let faulted = FaultedTransport::new(
                server_end,
                0,
                FaultPlan::new(seed, cfg),
                EventLog::new(),
                VirtualClock::new(),
            );
            serve_connection(faulted, &service, &pool);
        }
        None => serve_connection(server_end, &service, &pool),
    });
    let mut conn = client_end;
    let mut frames = FrameBuffer::new();
    let mut chunk = [0u8; 1024];
    let mut received = 0usize;
    let mut responses = 0usize;
    for _ in 0..PINGS {
        conn.write_all(b"{\"op\":\"ping\"}\n").expect("write ping");
    }
    while responses < PINGS {
        let n = conn.read(&mut chunk).expect("read responses");
        assert!(n > 0, "server hung up early");
        received += n;
        frames.push(&chunk[..n]);
        while let Some(Framed::Line(_)) = frames.next_frame() {
            responses += 1;
        }
    }
    drop(conn);
    server.join().expect("serving thread");
    received
}

fn main() {
    let mut bench = Bench::new("transport").with_counts(2, 20);
    let service = Arc::new(Service::new(StoreConfig::default()));
    let pool = Arc::new(ThreadPool::new(2, 64));

    bench.run(format!("sim/ping_x{PINGS}"), || {
        roundtrip(&service, &pool, None)
    });
    bench.run(format!("sim_faulted/ping_x{PINGS}"), || {
        roundtrip(&service, &pool, Some(0xFA))
    });

    // Raw reassembly: 256 one-KiB lines pushed in 173-byte chunks (a
    // worst-ish case: every line spans several pushes).
    let mut input = Vec::new();
    for i in 0..256usize {
        let mut line = vec![b'a' + (i % 26) as u8; 1023];
        line.push(b'\n');
        input.extend_from_slice(&line);
    }
    bench.run("frame_reassembly/256x1KiB", || {
        let mut frames = FrameBuffer::new();
        let mut lines = 0usize;
        for chunk in input.chunks(173) {
            frames.push(chunk);
            while let Some(Framed::Line(_)) = frames.next_frame() {
                lines += 1;
            }
        }
        assert_eq!(lines, 256);
        lines
    });

    pool.shutdown();
    bench.finish().expect("write BENCH_transport.json");
}
