//! B2 — cost of the ranking heuristics (quality numbers come from the
//! `report` binary): attribute-ratio ranking vs weighted matcher
//! suggestion.

use sit_bench::harness::Bench;
use sit_bench::{drive_session, Phase2Strategy, Phase3Strategy};
use sit_core::session::Session;
use sit_datagen::oracle::GroundTruthOracle;
use sit_datagen::GeneratorConfig;
use sit_matcher::suggest::suggest_equivalences;
use sit_matcher::WeightedResemblance;

fn main() {
    let mut bench = Bench::new("heuristic_quality").with_counts(2, 20);
    for objects in [8usize, 16, 32] {
        let pair = GeneratorConfig {
            objects_per_schema: objects,
            overlap: 0.5,
            seed: 42,
            ..Default::default()
        }
        .generate_pair();
        // Ranking after a full phase 2.
        let mut oracle = GroundTruthOracle::new(&pair.truth);
        let driven = drive_session(
            &pair,
            &mut oracle,
            Phase2Strategy::Exhaustive,
            Phase3Strategy::Ranked,
        );
        bench.run(format!("attribute_ratio_rank/{objects}"), || {
            driven.session.candidates(driven.ids.0, driven.ids.1)
        });
        // Matcher suggestion sweep over all attribute pairs.
        let mut session = Session::new();
        let sa = session.add_schema(pair.a.clone()).unwrap();
        let sb = session.add_schema(pair.b.clone()).unwrap();
        let w = WeightedResemblance::default();
        bench.run(format!("matcher_suggest/{objects}"), || {
            suggest_equivalences(session.catalog(), &w, sa, sb, 0.55)
        });
    }
    bench.finish().expect("write BENCH_heuristic_quality.json");
}
