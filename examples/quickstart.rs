//! Quickstart: the four phases of schema integration, end to end.
//!
//! Reproduces the paper's running example (Figures 3–5): collect the two
//! university schemas, declare attribute equivalences, review the ranked
//! candidate pairs, assert the domain relationships, integrate, and
//! translate a request through the generated mappings.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sit::core::assertion::Assertion;
use sit::core::mapping::{CmpOp, Query};
use sit::core::session::Session;
use sit::ecr::{fixtures, render};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Phase 1: schema collection --------------------------------
    // (In the tool this is Screens 2-5; here the paper's fixtures.)
    let mut session = Session::new();
    let sc1 = session.add_schema(fixtures::sc1())?;
    let sc2 = session.add_schema(fixtures::sc2())?;
    println!("phase 1: collected schemas sc1 (Figure 3) and sc2 (Figure 4)\n");

    // ---- Phase 2: attribute equivalence classes --------------------
    for (o1, a1, o2, a2) in [
        ("Student", "Name", "Grad_student", "Name"),
        ("Student", "GPA", "Grad_student", "GPA"),
        ("Student", "Name", "Faculty", "Name"),
        ("Department", "Dname", "Department", "Dname"),
        ("Majors", "Since", "Majors", "Since"),
    ] {
        session.declare_equivalent_named("sc1", o1, a1, "sc2", o2, a2)?;
    }
    println!("phase 2: equivalence classes declared (Screen 7 state)");

    // The OCS-derived ranked candidate list with attribute ratios
    // (Screen 8's rows).
    println!("\nranked object pairs (attribute ratio):");
    for pair in session.candidates(sc1, sc2) {
        println!(
            "  {:<22} {:<24} {:.4}",
            session.catalog().obj_display(pair.left),
            session.catalog().obj_display(pair.right),
            pair.ratio
        );
    }

    // ---- Phase 3: assertions (with derivation + conflict checks) ---
    let dept1 = session.object_named("sc1", "Department")?;
    let dept2 = session.object_named("sc2", "Department")?;
    let student = session.object_named("sc1", "Student")?;
    let grad = session.object_named("sc2", "Grad_student")?;
    let faculty = session.object_named("sc2", "Faculty")?;
    session.assert_objects(dept1, dept2, Assertion::Equal)?;
    session.assert_objects(student, grad, Assertion::Contains)?;
    session.assert_objects(student, faculty, Assertion::DisjointIntegrable)?;
    let majors1 = session.rel_named("sc1", "Majors")?;
    let majors2 = session.rel_named("sc2", "Majors")?;
    session.assert_rels(majors1, majors2, Assertion::Equal)?;
    println!("\nphase 3: assertions recorded (codes 1, 3, 4 of Screen 8)");

    // ---- Phase 4: integration + mappings ---------------------------
    let (result, mappings) = session.integrate_with_mappings(sc1, sc2, &Default::default())?;
    println!("\nphase 4: integrated schema (Figure 5):\n");
    print!("{}", render::render(&result.schema));

    // Logical-design direction: a view request against sc2 rewritten to
    // the integrated schema.
    let view_query = Query::select("Grad_student", &["Name", "Support_type"])
        .filtered("Name", CmpOp::Eq, "'Smith'");
    println!("\nview request   : [sc2] {view_query}");
    println!(
        "against global : {}",
        mappings.to_integrated("sc2", &view_query)?
    );

    // Global-design direction: a request against the derived class fans
    // out to the component databases.
    let global_query = Query::select("D_Stud_Facu", &["D_Name"]);
    println!("\nglobal request : {global_query}");
    println!("fan-out plan   :\n{}", mappings.to_components(&global_query)?);
    Ok(())
}
