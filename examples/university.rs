//! The paper's full university example with every intermediate artifact:
//! OCS matrix, ACS class numbers, derived assertions, clusters, lattice,
//! provenance — a tour of the bookkeeping the tool performs for the DDA.
//!
//! ```text
//! cargo run --example university
//! ```

use sit::core::assertion::Assertion;
use sit::core::resemblance::ocs_matrix;
use sit::core::session::Session;
use sit::ecr::fixtures;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::new();
    let sc1 = session.add_schema(fixtures::sc1())?;
    let sc2 = session.add_schema(fixtures::sc2())?;

    // Phase 2 with Screen 7's numbering made visible.
    session.declare_equivalent_named("sc1", "Student", "Name", "sc2", "Grad_student", "Name")?;
    session.declare_equivalent_named("sc1", "Student", "GPA", "sc2", "Grad_student", "GPA")?;
    session.declare_equivalent_named("sc1", "Student", "Name", "sc2", "Faculty", "Name")?;
    session.declare_equivalent_named("sc1", "Department", "Dname", "sc2", "Department", "Dname")?;

    println!("Eq_class numbers (Screen 7):");
    let catalog = session.catalog();
    for sid in [sc1, sc2] {
        for ga in catalog.attrs_of(sid) {
            println!(
                "  {:<28} class #{}",
                catalog.attr_display(ga),
                session.equivalences().class_no(ga).unwrap_or(0)
            );
        }
    }

    println!("\nOCS matrix (rows sc1 objects, columns sc2 objects):");
    let m = ocs_matrix(catalog, session.equivalences(), sc1, sc2);
    for (i, row) in m.iter().enumerate() {
        let name = &catalog.schema(sc1).object(sit::ecr::ObjectId::new(i as u32)).name;
        println!("  {name:<12} {row:?}");
    }

    // Phase 3 — note the derivations the engine reports.
    let student = session.object_named("sc1", "Student")?;
    let grad = session.object_named("sc2", "Grad_student")?;
    let faculty = session.object_named("sc2", "Faculty")?;
    let dept1 = session.object_named("sc1", "Department")?;
    let dept2 = session.object_named("sc2", "Department")?;
    for (a, b, assertion) in [
        (dept1, dept2, Assertion::Equal),
        (student, grad, Assertion::Contains),
        (student, faculty, Assertion::DisjointIntegrable),
    ] {
        let derived = session.assert_objects(a, b, assertion)?;
        println!(
            "\nasserted {} {} {} -> {} derived",
            session.catalog().obj_display(a),
            assertion,
            session.catalog().obj_display(b),
            derived.len()
        );
        for d in derived {
            println!(
                "  derived: {} {} {}",
                session.catalog().obj_display(d.a),
                d.rel,
                session.catalog().obj_display(d.b)
            );
        }
    }

    // Phase 4 with provenance.
    let result = session.integrate(sc1, sc2, &Default::default())?;
    println!("\nclusters:");
    for (i, group) in result.object_clusters.groups.iter().enumerate() {
        let names: Vec<String> = group
            .iter()
            .map(|&g| session.catalog().obj_display(g))
            .collect();
        println!("  cluster {i}: {}", names.join(", "));
    }

    println!("\nintegrated objects with attribute provenance:");
    for (oid, obj) in result.schema.objects() {
        println!("  [{}]", obj.name);
        for (aid, attr) in obj.attributes.iter().enumerate() {
            let prov = &result.object_attr_prov[oid.index()][aid];
            let comps: Vec<String> = prov
                .components
                .iter()
                .map(|c| format!("{}.{}.{}", c.schema, c.owner, c.attr.name))
                .collect();
            println!("    {:<14} <- {}", attr.name, comps.join(" + "));
        }
    }
    Ok(())
}
