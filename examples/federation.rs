//! Global schema design for a federation: translate a relational and a
//! hierarchical database into ECR (the Navathe–Awong front end), integrate
//! them into one global schema, and route a global request to the
//! underlying databases — the paper's second context ("Several databases
//! already exist and are in use. The objective is to design a single
//! global schema...").
//!
//! ```text
//! cargo run --example federation
//! ```

use sit::core::assertion::Assertion;
use sit::core::mapping::Query;
use sit::core::session::Session;
use sit::ecr::render;
use sit::translate::{HierSchema, RecordType, RelSchema, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Database 1: a relational personnel system.
    let mut personnel = RelSchema::new("personnel");
    personnel.table(
        Table::new("employee")
            .col_pk("emp_no", "int")
            .col("full_name", "char")
            .col("salary", "real")
            .col_fk("dept_no", "int", "department", "dept_no"),
    );
    personnel.table(
        Table::new("department")
            .col_pk("dept_no", "int")
            .col("dept_name", "char"),
    );
    personnel.table(
        Table::new("manager")
            .col_pk_fk("emp_no", "int", "employee", "emp_no")
            .col("bonus", "real"),
    );
    let personnel_ecr = personnel.to_ecr()?;
    println!("--- personnel (relational -> ECR) ---");
    print!("{}", render::render(&personnel_ecr));

    // Database 2: a hierarchical project-tracking system.
    let mut projects = HierSchema::new("projects");
    projects.record(
        RecordType::root("division")
            .seq_field("div_no", "int")
            .field("division_name", "char"),
    );
    projects.record(
        RecordType::child("project", "division")
            .seq_field("proj_no", "int")
            .field("title", "char"),
    );
    projects.record(
        RecordType::root("worker")
            .seq_field("worker_no", "int")
            .field("name", "char")
            .field("wage", "real"),
    );
    projects.record(RecordType::child("assignment", "project").virtually_under("worker"));
    let projects_ecr = projects.to_ecr()?;
    println!("\n--- projects (hierarchical -> ECR) ---");
    print!("{}", render::render(&projects_ecr));

    // Integrate into the global schema.
    let mut session = Session::new();
    let p = session.add_schema(personnel_ecr)?;
    let q = session.add_schema(projects_ecr)?;

    session.declare_equivalent_named("personnel", "employee", "emp_no", "projects", "worker", "worker_no")?;
    session.declare_equivalent_named("personnel", "employee", "full_name", "projects", "worker", "name")?;
    session.declare_equivalent_named("personnel", "employee", "salary", "projects", "worker", "wage")?;
    session.declare_equivalent_named("personnel", "department", "dept_no", "projects", "division", "div_no")?;
    session.declare_equivalent_named(
        "personnel", "department", "dept_name", "projects", "division", "division_name",
    )?;

    println!("\nranked candidates:");
    for pair in session.candidates(p, q) {
        println!(
            "  {:<24} {:<22} {:.4}",
            session.catalog().obj_display(pair.left),
            session.catalog().obj_display(pair.right),
            pair.ratio
        );
    }

    // Every employee is a worker somewhere in the enterprise, but not
    // every project worker is on the payroll database: containment.
    let employee = session.object_named("personnel", "employee")?;
    let worker = session.object_named("projects", "worker")?;
    session.assert_objects(worker, employee, Assertion::Contains)?;
    // Departments and divisions are the same organisational units.
    let dept = session.object_named("personnel", "department")?;
    let division = session.object_named("projects", "division")?;
    session.assert_objects(dept, division, Assertion::Equal)?;

    let (result, mappings) =
        session.integrate_with_mappings(p, q, &Default::default())?;
    println!("\n--- global schema ---");
    print!("{}", render::render(&result.schema));

    // A global request routes to the component database that carries the
    // class (every employee is also a project worker, so the merged name
    // attribute D_name_full lives on `worker`).
    let global = Query::select("worker", &["D_name_full"]);
    println!("\nglobal request: {global}");
    println!("fan-out:\n{}", mappings.to_components(&global)?);

    // A view request from the personnel database side maps up through the
    // absorbed attribute.
    let view = Query::select("employee", &["full_name"]);
    println!("\nview request  : [personnel] {view}");
    println!("against global: {}", mappings.to_integrated("personnel", &view)?);
    Ok(())
}
