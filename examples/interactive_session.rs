//! A complete scripted session with the interactive tool, printing the
//! screens a DDA would see: schema collection through the forms, the
//! equivalence and assertion screens, and the integrated-schema viewer —
//! the full dialogue of the paper's §3 driven deterministically.
//!
//! ```text
//! cargo run --example interactive_session
//! ```

use sit::tui::app::App;
use sit::tui::event::{keys, Event};

fn feed(app: &mut App, events: Vec<Event>, show: bool) {
    for e in events {
        app.handle(e);
        if show {
            println!("{}", app.render());
        }
    }
}

fn quiet(app: &mut App, events: Vec<Event>) {
    feed(app, events, false);
}

fn show(app: &App, caption: &str) {
    println!("\n════ {caption} ════");
    println!("{}", app.render());
}

fn main() {
    let mut app = App::new();
    show(&app, "Screen 1: main menu");

    // ---- Task 1: collect sc1 through Screens 2-5 -------------------
    quiet(&mut app, keys("1a"));
    quiet(&mut app, vec![Event::text("sc1")]);
    quiet(&mut app, keys("a"));
    quiet(&mut app, vec![Event::text("Student")]);
    quiet(&mut app, keys("e"));
    quiet(
        &mut app,
        vec![
            Event::text("Name char key"),
            Event::text("GPA real"),
            Event::text(""),
        ],
    );
    quiet(&mut app, keys("a"));
    quiet(&mut app, vec![Event::text("Department")]);
    quiet(&mut app, keys("e"));
    quiet(&mut app, vec![Event::text("Dname char key"), Event::text("")]);
    quiet(&mut app, keys("a"));
    quiet(&mut app, vec![Event::text("Majors")]);
    quiet(&mut app, keys("r"));
    quiet(
        &mut app,
        vec![
            Event::text("Student (0,1)"),
            Event::text("Department (0,n)"),
            Event::text(""),
            Event::text("Since date"),
        ],
    );
    show(&app, "Screen 5: collecting Majors' attributes");
    quiet(&mut app, vec![Event::text("")]);
    show(&app, "Screen 3: sc1's structures collected");
    quiet(&mut app, keys("e"));

    // sc2 (collected the same way, quieter).
    quiet(&mut app, keys("a"));
    quiet(&mut app, vec![Event::text("sc2")]);
    for (name, kind, fields) in [
        ("Grad_student", "e", vec!["Name char key", "GPA real", "Support_type char"]),
        ("Faculty", "e", vec!["Name char key", "Rank char"]),
        ("Department", "e", vec!["Dname char key"]),
    ] {
        quiet(&mut app, keys("a"));
        quiet(&mut app, vec![Event::text(name)]);
        quiet(&mut app, keys(kind));
        let mut evs: Vec<Event> = fields.into_iter().map(Event::text).collect();
        evs.push(Event::text(""));
        quiet(&mut app, evs);
    }
    quiet(&mut app, keys("a"));
    quiet(&mut app, vec![Event::text("Majors")]);
    quiet(&mut app, keys("r"));
    quiet(
        &mut app,
        vec![
            Event::text("Grad_student (0,1)"),
            Event::text("Department (0,n)"),
            Event::text(""),
            Event::text("Since date"),
            Event::text(""),
        ],
    );
    quiet(&mut app, keys("a"));
    quiet(&mut app, vec![Event::text("Works")]);
    quiet(&mut app, keys("r"));
    quiet(
        &mut app,
        vec![
            Event::text("Faculty (1,1)"),
            Event::text("Department (0,n)"),
            Event::text(""),
            Event::text(""),
        ],
    );
    quiet(&mut app, keys("ee"));
    show(&app, "Screen 2: both schemas defined");
    quiet(&mut app, keys("e"));

    // ---- Task 2: attribute equivalences (Screens 6-7) --------------
    quiet(&mut app, keys("2"));
    quiet(&mut app, vec![Event::text("sc1 sc2")]);
    quiet(&mut app, vec![Event::text("Student Grad_student")]);
    quiet(&mut app, keys("a"));
    quiet(&mut app, vec![Event::text("1 1")]);
    quiet(&mut app, keys("a"));
    quiet(&mut app, vec![Event::text("2 2")]);
    show(&app, "Screen 7: Student/Grad_student equivalence classes");
    quiet(&mut app, keys("e"));
    quiet(&mut app, vec![Event::text("Student Faculty")]);
    quiet(&mut app, keys("a"));
    quiet(&mut app, vec![Event::text("1 1")]);
    quiet(&mut app, keys("e"));
    quiet(&mut app, vec![Event::text("Department Department")]);
    quiet(&mut app, keys("a"));
    quiet(&mut app, vec![Event::text("1 1")]);
    quiet(&mut app, keys("ee"));

    // ---- Task 4: relationship attribute equivalence ----------------
    quiet(&mut app, keys("4"));
    quiet(&mut app, vec![Event::text("sc1 sc2")]);
    quiet(&mut app, vec![Event::text("Majors Majors")]);
    quiet(&mut app, keys("a"));
    quiet(&mut app, vec![Event::text("1 1")]);
    quiet(&mut app, keys("ee"));

    // ---- Task 3: object assertions (Screen 8) ----------------------
    quiet(&mut app, keys("3"));
    show(&app, "Screen 8: ranked object pairs with attribute ratios");
    quiet(&mut app, keys("134"));
    show(&app, "Screen 8: assertions entered (1, 3, 4)");
    quiet(&mut app, keys("e"));

    // ---- Task 5: relationship assertions ----------------------------
    quiet(&mut app, keys("5"));
    quiet(&mut app, keys("1e"));

    // ---- Task 6: the viewer (Screens 10-12) -------------------------
    quiet(&mut app, keys("6"));
    show(&app, "Screen 10: the integrated schema (Figure 5)");
    quiet(&mut app, vec![Event::text("Student")]);
    quiet(&mut app, keys("c"));
    show(&app, "Screen 11: category screen for Student");
    quiet(&mut app, keys("a"));
    show(&app, "Attribute screen for Student");
    quiet(&mut app, keys("1"));
    show(&app, "Screen 12a: first component of D_Name");
    quiet(&mut app, keys(" "));
    show(&app, "Screen 12b: second component of D_Name");
}
