//! Assertion conflict detection and repair — the Screen 9 scenario.
//!
//! `sc3.Instructor ⊆ sc4.Grad_student` (DDA) combines with
//! `sc4.Grad_student ⊆ sc4.Student` (sc4's own category structure) to
//! derive `sc3.Instructor ⊆ sc4.Student`; asserting the pair disjoint is
//! then rejected with the full derivation chain, and the DDA repairs the
//! earlier assertion.
//!
//! ```text
//! cargo run --example conflict_repair
//! ```

use sit::core::assertion::Assertion;
use sit::core::error::CoreError;
use sit::core::session::Session;
use sit::ecr::fixtures;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::new();
    session.add_schema(fixtures::sc3())?;
    session.add_schema(fixtures::sc4())?;

    let instructor = session.object_named("sc3", "Instructor")?;
    let grad = session.object_named("sc4", "Grad_student")?;
    let student = session.object_named("sc4", "Student")?;

    // The intra-schema fact was seeded automatically from sc4's category.
    println!(
        "seeded: sc4.Grad_student vs sc4.Student = {:?}",
        session.object_engine().known(grad, student)
    );

    let derived = session.assert_objects(instructor, grad, Assertion::ContainedIn)?;
    println!("\nasserted: sc3.Instructor 'contained in' sc4.Grad_student");
    for d in &derived {
        println!(
            "derived : {} {} {}",
            session.catalog().obj_display(d.a),
            d.rel,
            session.catalog().obj_display(d.b)
        );
    }

    // The conflicting assertion (Screen 9's <new>).
    println!("\nattempting: sc3.Instructor disjoint sc4.Student ...");
    match session.assert_objects(instructor, student, Assertion::DisjointNonIntegrable) {
        Err(CoreError::Conflict(report)) => {
            println!("CONFLICT: {report}");
        }
        other => panic!("expected a conflict, got {other:?}"),
    }

    // Repair: retract the earlier assertion and weaken it. (The paper
    // suggests '0' or '5'; the relation algebra shows only '0' is
    // consistent with the intended disjointness — an overlap with a
    // subset of Student forces a non-empty intersection with Student.)
    println!("\nrepair: retract Instructor⊆Grad_student, assert disjoint instead");
    assert!(session.retract_objects(instructor, grad));
    session.assert_objects(instructor, grad, Assertion::DisjointNonIntegrable)?;
    session.assert_objects(instructor, student, Assertion::DisjointNonIntegrable)?;
    println!(
        "now: sc3.Instructor vs sc4.Student = {:?}",
        session.object_engine().known(instructor, student)
    );
    println!("\nconflict resolved; the assertion set is consistent.");
    Ok(())
}
