//! Real-process crash recovery: SIGKILL a `sit serve --data-dir`
//! subprocess mid-session and prove the restarted server recovers the
//! acknowledged state byte-for-byte.
//!
//! The in-process chaos suite (`crates/server/tests/crash.rs`) sweeps
//! every byte offset over simulated storage; this test closes the loop
//! on the real thing — a real TCP server, a real directory, a real
//! `kill -9` (no drop handlers, no flushes, no goodbyes).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn spawn_serve(data_dir: &std::path::Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_sit"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--data-dir",
            data_dir.to_str().expect("utf-8 temp path"),
            "--fsync",
            "always",
            "--snapshot-every",
            "3",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sit serve --data-dir");
    let stdout = child.stdout.take().expect("serve stdout");
    let mut banner = String::new();
    BufReader::new(stdout)
        .read_line(&mut banner)
        .expect("read listen banner");
    let addr = banner
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
        .to_owned();
    (child, addr)
}

/// Send one frame, require `"ok":true`, return the response line.
fn call(stream: &mut TcpStream, frame: &str) -> String {
    stream.write_all(frame.as_bytes()).expect("send frame");
    stream.write_all(b"\n").expect("send newline");
    stream.flush().expect("flush");
    let mut line = String::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(1) if byte[0] == b'\n' => break,
            Ok(1) => line.push(byte[0] as char),
            other => panic!("connection died mid-response: {other:?} after {line:?}"),
        }
    }
    assert!(
        line.contains("\"ok\":true"),
        "request not acknowledged: {frame} -> {line}"
    );
    line
}

fn connect(addr: &str) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect to sit serve");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    stream
}

#[test]
fn sigkill_mid_session_recovers_acknowledged_state_byte_for_byte() {
    let dir = PathBuf::from(std::env::temp_dir()).join(format!("sit_kill9_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create data dir");

    let (mut child, addr) = spawn_serve(&dir);
    let mut conn = connect(&addr);
    call(&mut conn, r#"{"op":"open"}"#);
    call(
        &mut conn,
        r#"{"op":"add_schema","session":"1","ddl":"schema sa { entity P { N: char key; } entity Q { M: char key; } }"}"#,
    );
    call(
        &mut conn,
        r#"{"op":"add_schema","session":"1","ddl":"schema sb { entity P2 { N: char key; } }"}"#,
    );
    call(
        &mut conn,
        r#"{"op":"equiv","session":"1","a":"sa.P.N","b":"sb.P2.N"}"#,
    );
    call(
        &mut conn,
        r#"{"op":"assert","session":"1","a":"sa.P","b":"sb.P2","assertion":"equals"}"#,
    );
    let before = call(&mut conn, r#"{"op":"save","session":"1"}"#);

    // Every mutation above was acknowledged under fsync=always; now the
    // process dies with no chance to clean up. `Child::kill` is SIGKILL
    // on Unix.
    child.kill().expect("kill -9 the server");
    child.wait().expect("reap the server");
    drop(conn);

    // A new process over the same directory must recover session 1.
    let (child2, addr2) = spawn_serve(&dir);
    let mut conn2 = connect(&addr2);
    let after = call(&mut conn2, r#"{"op":"save","session":"1"}"#);
    assert_eq!(
        before, after,
        "recovered session must save byte-identically after kill -9"
    );
    let stats = call(&mut conn2, r#"{"op":"persist_stats"}"#);
    assert!(stats.contains("\"enabled\":true"), "{stats}");

    // And the recovered server is a fully working durable server: keep
    // mutating, shut down gracefully, recover again.
    call(
        &mut conn2,
        r#"{"op":"equiv","session":"1","a":"sa.Q.M","b":"sb.P2.N"}"#,
    );
    let extended = call(&mut conn2, r#"{"op":"save","session":"1"}"#);
    assert_ne!(extended, before, "the new equiv must change the script");
    conn2
        .write_all(b"{\"op\":\"shutdown\"}\n")
        .expect("request shutdown");
    conn2.flush().expect("flush shutdown");
    drop(conn2);
    let mut child2 = child2;
    child2.wait().expect("graceful drain exits");

    let (mut child3, addr3) = spawn_serve(&dir);
    let mut conn3 = connect(&addr3);
    let final_save = call(&mut conn3, r#"{"op":"save","session":"1"}"#);
    assert_eq!(
        extended, final_save,
        "state from after the kill -9 recovery must survive a graceful restart too"
    );
    drop(conn3);
    let _ = child3.kill();
    let _ = child3.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
