//! Smoke tests of the `sit` command-line binary, covering every mode:
//! session loading, listing, rendering, DOT export, batch integration
//! with query translation, TUI scripting, and session saving.

use std::process::{Command, Stdio};

fn sit() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sit"))
}

fn demo_session() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/examples/data/university.sit")
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = sit()
        .args(args)
        .stdin(Stdio::null())
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn list_mode() {
    let (stdout, _, ok) = run(&["--load", demo_session(), "--list"]);
    assert!(ok);
    assert!(stdout.contains("sc1 (2 object classes, 1 relationship sets)"), "{stdout}");
    assert!(stdout.contains("sc2 (3 object classes, 2 relationship sets)"), "{stdout}");
}

#[test]
fn render_and_dot_modes() {
    let (stdout, _, ok) = run(&["--load", demo_session(), "--render", "sc1"]);
    assert!(ok);
    assert!(stdout.contains("[Student] (entity)"), "{stdout}");
    let (dot, _, ok) = run(&["--load", demo_session(), "--dot", "sc2"]);
    assert!(ok);
    assert!(dot.starts_with("digraph \"sc2\""), "{dot}");
    assert!(dot.contains("shape=diamond"), "{dot}");
}

#[test]
fn integrate_mode_with_query_translation() {
    let (stdout, _, ok) = run(&[
        "--load",
        demo_session(),
        "--integrate",
        "sc1",
        "sc2",
        "--to-components",
        "select D_Name from D_Stud_Facu",
        "--to-integrated",
        "sc2",
        "select Name from Grad_student",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("[E_Department]"), "{stdout}");
    assert!(stdout.contains("[D_Stud_Facu]"), "{stdout}");
    assert!(stdout.contains("select Name from Student"), "fan-out branch: {stdout}");
    assert!(stdout.contains("select D_Name from Grad_student"), "view mapping: {stdout}");
}

#[test]
fn tui_script_mode() {
    let events = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/data/tui_session.events"
    );
    let (stdout, _, ok) = run(&["--load", demo_session(), "--script", events]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("Category Screen"), "{stdout}");
    assert!(stdout.contains("D_Stud_Facu (E)"), "{stdout}");
}

#[test]
fn save_roundtrip() {
    let dir = std::env::temp_dir().join(format!("sit_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out_path = dir.join("saved.sit");
    let out_str = out_path.to_str().unwrap();
    let (_, _, ok) = run(&[
        "--load",
        demo_session(),
        "--integrate",
        "sc1",
        "sc2",
        "--save",
        out_str,
    ]);
    assert!(ok);
    // The saved script loads again and lists both schemas.
    let (stdout, _, ok) = run(&["--load", out_str, "--list"]);
    assert!(ok);
    assert!(stdout.contains("sc1"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn multiple_loads_preserve_every_files_directives() {
    let dir = std::env::temp_dir().join(format!("sit_multi_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p1 = dir.join("p1.sit");
    let p2 = dir.join("p2.sit");
    std::fs::write(&p1, "schema p1 { entity A { id: int key; } }\n").unwrap();
    std::fs::write(
        &p2,
        "schema p2 { entity B { id: int key; } }\nequiv p1.A.id = p2.B.id;\nassert p1.A equals p2.B;\n",
    )
    .unwrap();
    let (stdout, _, ok) = run(&[
        "--load",
        p1.to_str().unwrap(),
        "--load",
        p2.to_str().unwrap(),
        "--integrate",
        "p1",
        "p2",
    ]);
    assert!(ok, "{stdout}");
    // The second file's assertion survives: the classes merged.
    assert!(stdout.contains("[E_A_B]"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn errors_are_reported() {
    let (_, stderr, ok) = run(&["--load", "/nonexistent/file.sit"]);
    assert!(!ok);
    assert!(stderr.contains("sit:"), "{stderr}");
    let (_, stderr, ok) = run(&["--bogus-flag"]);
    assert!(!ok);
    assert!(stderr.contains("unknown argument"), "{stderr}");
    let (_, stderr, ok) = run(&["--load", demo_session(), "--render", "ghost"]);
    assert!(!ok);
    assert!(stderr.contains("unknown schema"), "{stderr}");
}

#[test]
fn help_prints_usage() {
    let (stdout, _, ok) = run(&["--help"]);
    assert!(ok);
    assert!(stdout.contains("--integrate"), "{stdout}");
    assert!(stdout.contains("--timeout-ms"), "{stdout}");
}

/// A `sit serve` subprocess on an ephemeral port, killed on drop.
struct ServeProc {
    child: std::process::Child,
    addr: String,
}

impl ServeProc {
    fn start() -> ServeProc {
        use std::io::{BufRead, BufReader};
        let mut child = sit()
            .args(["serve", "--addr", "127.0.0.1:0"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn sit serve");
        // The server prints `listening on 127.0.0.1:PORT` once bound.
        let stdout = child.stdout.take().expect("serve stdout");
        let mut banner = String::new();
        BufReader::new(stdout)
            .read_line(&mut banner)
            .expect("read listen banner");
        let addr = banner
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
            .to_owned();
        ServeProc { child, addr }
    }

    /// Pipe `input` through `sit client <addr> <extra...>`.
    fn client(&self, extra: &[&str], input: &str) -> (String, String, Option<i32>) {
        use std::io::Write;
        let mut cmd = sit();
        cmd.arg("client").arg(&self.addr).args(extra);
        let mut child = cmd
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn sit client");
        child
            .stdin
            .take()
            .expect("client stdin")
            .write_all(input.as_bytes())
            .expect("write requests");
        let out = child.wait_with_output().expect("client exits");
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
            out.status.code(),
        )
    }
}

impl Drop for ServeProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn client_exits_zero_on_success_frames() {
    let server = ServeProc::start();
    let (stdout, stderr, code) = server.client(
        &["--timeout-ms", "5000", "--retries", "2"],
        "{\"op\":\"ping\"}\n{\"op\":\"open\"}\n",
    );
    assert_eq!(code, Some(0), "stdout: {stdout} stderr: {stderr}");
    assert!(stdout.contains("\"pong\":true"), "{stdout}");
    assert!(stdout.contains("\"session\":"), "{stdout}");
    assert!(stderr.is_empty(), "{stderr}");
}

#[test]
fn client_passes_trace_ids_through_to_the_server_span() {
    let server = ServeProc::start();
    // The frame must reach the server verbatim: the client's typed
    // retry path re-encodes requests, which would drop `trace_id`.
    let (stdout, _, code) = server.client(
        &[],
        "{\"op\":\"ping\",\"trace_id\":\"cli-e2e-42\"}\n{\"op\":\"trace_dump\",\"limit\":64}\n",
    );
    assert_eq!(code, Some(0), "{stdout}");
    assert!(
        stdout.contains("cli-e2e-42"),
        "trace_id missing from trace_dump: {stdout}"
    );
}

#[test]
fn client_exits_nonzero_on_typed_error_frame() {
    let server = ServeProc::start();
    // unknown_session: the error frame still prints to stdout, the code
    // goes to stderr, and the exit status is 2 — later requests on the
    // same run are still served.
    let (stdout, stderr, code) = server.client(
        &[],
        "{\"op\":\"save\",\"session\":\"999\"}\n{\"op\":\"ping\"}\n",
    );
    assert_eq!(code, Some(2), "stdout: {stdout} stderr: {stderr}");
    assert!(stdout.contains("\"code\":\"unknown_session\""), "{stdout}");
    assert!(stdout.contains("\"pong\":true"), "later requests still served: {stdout}");
    assert!(
        stderr.contains("server error: unknown_session"),
        "{stderr}"
    );
}

#[test]
fn client_reports_parse_errors_from_garbage_lines() {
    let server = ServeProc::start();
    let (stdout, stderr, code) = server.client(&[], "this is not json\n");
    assert_eq!(code, Some(2), "stdout: {stdout} stderr: {stderr}");
    assert!(stdout.contains("\"code\":\"parse\""), "{stdout}");
    assert!(stderr.contains("server error: parse"), "{stderr}");
}
