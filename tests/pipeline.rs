//! Cross-crate integration tests: the full pipeline the paper's
//! future-work section sketches (translation → integration → mappings),
//! consistency between the interactive tool and the programmatic API,
//! and n-ary integration driven by the matcher's fold ordering.

use sit::core::assertion::Assertion;
use sit::core::mapping::Query;
use sit::core::nary::fold_integrate;
use sit::core::session::Session;
use sit::datagen::{DdaOracle, GeneratorConfig, GroundTruthOracle};
use sit::ecr::fixtures;
use sit::matcher::{best_integration_order, WeightedResemblance};
use sit::translate::{RelSchema, Table};
use sit::tui::app::App;
use sit::tui::event::{keys, Event};

#[test]
fn translate_integrate_map_pipeline() {
    // Two relational databases → ECR → integrated global schema → routed
    // request: the full federation pipeline.
    let mut db1 = RelSchema::new("db1");
    db1.table(
        Table::new("customer")
            .col_pk("cust_no", "int")
            .col("name", "char")
            .col("city", "char"),
    );
    let mut db2 = RelSchema::new("db2");
    db2.table(
        Table::new("client")
            .col_pk("client_id", "int")
            .col("name", "char")
            .col("phone", "char"),
    );
    let mut session = Session::new();
    let a = session.add_schema(db1.to_ecr().unwrap()).unwrap();
    let b = session.add_schema(db2.to_ecr().unwrap()).unwrap();
    session
        .declare_equivalent_named("db1", "customer", "cust_no", "db2", "client", "client_id")
        .unwrap();
    session
        .declare_equivalent_named("db1", "customer", "name", "db2", "client", "name")
        .unwrap();
    let customer = session.object_named("db1", "customer").unwrap();
    let client = session.object_named("db2", "client").unwrap();
    // The two databases hold overlapping customer populations.
    session
        .assert_objects(customer, client, Assertion::MayBe)
        .unwrap();
    let (result, mappings) = session
        .integrate_with_mappings(a, b, &Default::default())
        .unwrap();
    let derived = result
        .schema
        .object_by_name("D_cust_clie")
        .expect("derived superclass");
    assert_eq!(result.schema.children_of(derived).count(), 2);

    // Query the derived class: union of both databases.
    let plan = mappings
        .to_components(&Query::select("D_cust_clie", &["name"]))
        .unwrap();
    assert_eq!(plan.branches.len(), 2);
    assert!(!plan.equivalent, "a union, not duplicates");
    let schemas: Vec<&str> = plan.branches.iter().map(|b| b.schema.as_str()).collect();
    assert!(schemas.contains(&"db1") && schemas.contains(&"db2"));
}

#[test]
fn mapping_dictionary_lists_all_correspondences() {
    let mut session = Session::new();
    let a = session.add_schema(fixtures::sc1()).unwrap();
    let b = session.add_schema(fixtures::sc2()).unwrap();
    session
        .declare_equivalent_named("sc1", "Department", "Dname", "sc2", "Department", "Dname")
        .unwrap();
    let d1 = session.object_named("sc1", "Department").unwrap();
    let d2 = session.object_named("sc2", "Department").unwrap();
    session.assert_objects(d1, d2, Assertion::Equal).unwrap();
    let (_, mappings) = session
        .integrate_with_mappings(a, b, &Default::default())
        .unwrap();
    let dict = mappings.describe();
    assert!(dict.contains("object sc1.Department -> E_Department"), "{dict}");
    assert!(dict.contains("object sc2.Department -> E_Department"), "{dict}");
    assert!(
        dict.contains("attr   sc1.Department.Dname -> E_Department.D_Dname"),
        "{dict}"
    );
    // Untouched classes map to themselves.
    assert!(dict.contains("object sc1.Student -> Student"), "{dict}");
}

#[test]
fn tui_and_api_produce_the_same_integration() {
    // Drive the paper example through the screens...
    let mut session = Session::new();
    session.add_schema(fixtures::sc1()).unwrap();
    session.add_schema(fixtures::sc2()).unwrap();
    let mut app = App::with_session(session);
    let feed = |app: &mut App, evs: Vec<Event>| {
        for e in evs {
            app.handle(e);
        }
    };
    feed(&mut app, keys("2"));
    feed(&mut app, vec![Event::text("sc1 sc2")]);
    feed(&mut app, vec![Event::text("Student Grad_student")]);
    feed(&mut app, keys("a"));
    feed(&mut app, vec![Event::text("1 1")]);
    feed(&mut app, keys("a"));
    feed(&mut app, vec![Event::text("2 2")]);
    feed(&mut app, keys("e"));
    feed(&mut app, vec![Event::text("Student Faculty")]);
    feed(&mut app, keys("a"));
    feed(&mut app, vec![Event::text("1 1")]);
    feed(&mut app, keys("e"));
    feed(&mut app, vec![Event::text("Department Department")]);
    feed(&mut app, keys("a"));
    feed(&mut app, vec![Event::text("1 1")]);
    feed(&mut app, keys("ee"));
    feed(&mut app, keys("4"));
    feed(&mut app, vec![Event::text("sc1 sc2")]);
    feed(&mut app, vec![Event::text("Majors Majors")]);
    feed(&mut app, keys("a"));
    feed(&mut app, vec![Event::text("1 1")]);
    feed(&mut app, keys("ee"));
    feed(&mut app, keys("3"));
    feed(&mut app, keys("134e"));
    feed(&mut app, keys("5"));
    feed(&mut app, keys("1e"));
    feed(&mut app, keys("6"));
    let tui_schema = app.integrated().expect("viewer integrated").schema.clone();

    // ...and through the programmatic API.
    let mut session = Session::new();
    let sc1 = session.add_schema(fixtures::sc1()).unwrap();
    let sc2 = session.add_schema(fixtures::sc2()).unwrap();
    for (o1, a1, o2, a2) in [
        ("Student", "Name", "Grad_student", "Name"),
        ("Student", "GPA", "Grad_student", "GPA"),
        ("Student", "Name", "Faculty", "Name"),
        ("Department", "Dname", "Department", "Dname"),
        ("Majors", "Since", "Majors", "Since"),
    ] {
        session
            .declare_equivalent_named("sc1", o1, a1, "sc2", o2, a2)
            .unwrap();
    }
    let obj = |s: &Session, n: &str, o: &str| s.object_named(n, o).unwrap();
    let d1 = obj(&session, "sc1", "Department");
    let d2 = obj(&session, "sc2", "Department");
    let st = obj(&session, "sc1", "Student");
    let gr = obj(&session, "sc2", "Grad_student");
    let fa = obj(&session, "sc2", "Faculty");
    session.assert_objects(d1, d2, Assertion::Equal).unwrap();
    session.assert_objects(st, gr, Assertion::Contains).unwrap();
    session
        .assert_objects(st, fa, Assertion::DisjointIntegrable)
        .unwrap();
    let m1 = session.rel_named("sc1", "Majors").unwrap();
    let m2 = session.rel_named("sc2", "Majors").unwrap();
    session.assert_rels(m1, m2, Assertion::Equal).unwrap();
    let api_schema = session
        .integrate(sc1, sc2, &Default::default())
        .unwrap()
        .schema;

    assert_eq!(tui_schema, api_schema, "two routes, one integrated schema");
}

#[test]
fn nary_fold_with_matcher_ordering() {
    // A four-schema family, fold order picked by schema resemblance,
    // equivalences and assertions answered from ground truth.
    let config = GeneratorConfig {
        objects_per_schema: 5,
        overlap: 0.6,
        seed: 99,
        perturber: sit::datagen::Perturber {
            rename_prob: 0.0,
            drop_attr_prob: 0.0,
            extra_attr_prob: 0.0,
        },
        ..Default::default()
    };
    let family = config.generate_family(4);
    let w = WeightedResemblance::default();
    let refs: Vec<&sit::ecr::Schema> = family.schemas.iter().collect();
    let order = best_integration_order(&w, &refs);
    assert_eq!(order.len(), 4);

    let mut session = Session::new();
    let ids: Vec<sit::ecr::SchemaId> = family
        .schemas
        .iter()
        .map(|s| session.add_schema(s.clone()).unwrap())
        .collect();
    let ordered: Vec<sit::ecr::SchemaId> = order.iter().map(|&i| ids[i]).collect();

    let truths = family.truths.clone();
    let mut setup = move |sess: &mut Session,
                          x: sit::ecr::SchemaId,
                          y: sit::ecr::SchemaId|
          -> sit::core::error::Result<()> {
        // Equivalences and assertions by name against the pairwise truth
        // (names are stable because perturbation is off; merged classes
        // keep `E_<name>` which we strip).
        let strip = |n: &str| n.strip_prefix("E_").unwrap_or(n).to_owned();
        let sx = sess.catalog().schema(x).name().to_owned();
        let sy = sess.catalog().schema(y).name().to_owned();
        let xs: Vec<String> = sess
            .catalog()
            .schema(x)
            .objects()
            .map(|(_, o)| o.name.clone())
            .collect();
        let ys: Vec<String> = sess
            .catalog()
            .schema(y)
            .objects()
            .map(|(_, o)| o.name.clone())
            .collect();
        for ox in &xs {
            for oy in &ys {
                let hit = truths
                    .iter()
                    .flatten()
                    .find_map(|gt| gt.assertion_for(&strip(ox), oy));
                let Some(assertion) = hit else { continue };
                // Key equivalence so the merge collapses keys.
                let kx = sess
                    .catalog()
                    .schema(x)
                    .object(sess.catalog().schema(x).object_by_name(ox).unwrap())
                    .key_attrs()
                    .next()
                    .map(|(_, a)| a.name.clone());
                let ky = sess
                    .catalog()
                    .schema(y)
                    .object(sess.catalog().schema(y).object_by_name(oy).unwrap())
                    .key_attrs()
                    .next()
                    .map(|(_, a)| a.name.clone());
                if let (Some(kx), Some(ky)) = (kx, ky) {
                    let _ = sess.declare_equivalent_named(&sx, ox, &kx, &sy, oy, &ky);
                }
                let a = sess.object_named(&sx, ox)?;
                let b = sess.object_named(&sy, oy)?;
                let _ = sess.assert_objects(a, b, assertion);
            }
        }
        Ok(())
    };
    let steps = fold_integrate(&mut session, &ordered, &Default::default(), &mut setup).unwrap();
    assert_eq!(steps.len(), 3);
    let final_schema = &steps.last().unwrap().integrated.schema;
    // 3 shared concepts merge across all four schemas; 2 unique per
    // schema: 3 + 4*2 = 11 final object classes.
    assert_eq!(final_schema.object_count(), 11, "{final_schema:?}");
    assert!(sit::ecr::validate(final_schema).is_empty());
}

#[test]
fn oracle_driven_workload_reproduces_ground_truth_assertions() {
    let pair = GeneratorConfig {
        objects_per_schema: 10,
        overlap: 0.7,
        contained_frac: 0.3,
        mayby_frac: 0.2,
        seed: 1234,
        ..Default::default()
    }
    .generate_pair();
    let mut session = Session::new();
    let sa = session.add_schema(pair.a.clone()).unwrap();
    let sb = session.add_schema(pair.b.clone()).unwrap();
    let mut oracle = GroundTruthOracle::new(&pair.truth);

    // Phase 2 from truth.
    let attrs_a = session.catalog().attrs_of(sa);
    let attrs_b = session.catalog().attrs_of(sb);
    for &ga in &attrs_a {
        for &gb in &attrs_b {
            let (Ok(da), Ok(db)) = (session.catalog().attr(ga), session.catalog().attr(gb))
            else {
                continue;
            };
            if !da.domain.compatible(&db.domain) {
                continue;
            }
            let oa = session
                .catalog()
                .schema(sa)
                .owner_name(ga.owner)
                .unwrap()
                .to_owned();
            let ob = session
                .catalog()
                .schema(sb)
                .owner_name(gb.owner)
                .unwrap()
                .to_owned();
            let (na, nb) = (da.name.clone(), db.name.clone());
            if oracle.attrs_equivalent(&oa, &na, &ob, &nb) {
                session.declare_equivalent(ga, gb).unwrap();
            }
        }
    }

    // Phase 3: every truly corresponding pair gets its true assertion.
    let mut applied = 0;
    for t in &pair.truth.assertions {
        let a = session.object_named("gen_a", &t.a).unwrap();
        let b = session.object_named("gen_b", &t.b).unwrap();
        session.assert_objects(a, b, t.assertion).unwrap();
        applied += 1;
    }
    assert_eq!(applied, pair.truth.pair_count());

    // Phase 4: contains-related pairs show up as categories, may-be pairs
    // as derived superclasses.
    let result = session.integrate(sa, sb, &Default::default()).unwrap();
    let contains = pair
        .truth
        .assertions
        .iter()
        .filter(|t| t.assertion == Assertion::Contains)
        .count();
    let maybes = pair
        .truth
        .assertions
        .iter()
        .filter(|t| t.assertion == Assertion::MayBe)
        .count();
    assert_eq!(result.derived_objects().count(), maybes);
    for t in &pair.truth.assertions {
        if t.assertion != Assertion::Contains {
            continue;
        }
        let child = result
            .node_of(session.object_named("gen_b", &t.b).unwrap())
            .unwrap();
        let parent = result
            .node_of(session.object_named("gen_a", &t.a).unwrap())
            .unwrap();
        assert!(
            result.schema.object(child).parents().contains(&parent),
            "contains pair became a category edge"
        );
    }
    let _ = contains;
}
