//! Property-based tests on the core invariants, spanning crates.
//!
//! * the RCC5 assertion algebra is sound and tight against concrete sets;
//! * the closure engine never rejects a *satisfiable* assertion set and
//!   never derives a relation the witness violates;
//! * the ECR DDL round-trips arbitrary generated schemas;
//! * integration maps every component object and produces a valid schema.

use proptest::prelude::*;

use sit::core::assertion::{Assertion, Rel5, Rel5Set};
use sit::core::closure::AssertionEngine;
use sit::core::session::Session;
use sit::ecr::{ddl, Cardinality, Domain, SchemaBuilder};

// ---------------------------------------------------------------------
// RCC5 algebra vs concrete sets
// ---------------------------------------------------------------------

/// Relation between two non-empty bitmask sets.
fn relate(a: u32, b: u32) -> Rel5 {
    if a == b {
        Rel5::Eq
    } else if a & b == 0 {
        Rel5::Dr
    } else if a & b == a {
        Rel5::Pp
    } else if a & b == b {
        Rel5::Ppi
    } else {
        Rel5::Po
    }
}

fn nonempty_set() -> impl Strategy<Value = u32> {
    (1u32..(1 << 10)).prop_filter("non-empty", |&s| s != 0)
}

proptest! {
    /// Soundness of composition: the actual relation between a and c is
    /// always among the composed possibilities.
    #[test]
    fn composition_is_sound(a in nonempty_set(), b in nonempty_set(), c in nonempty_set()) {
        let r = Rel5Set::only(relate(a, b));
        let s = Rel5Set::only(relate(b, c));
        let t = relate(a, c);
        prop_assert!(r.compose(s).contains(t));
    }

    /// Converse round-trips and distributes over composition.
    #[test]
    fn converse_identities(bits1 in 0u8..32, bits2 in 0u8..32) {
        let x = Rel5Set::from_bits(bits1);
        let y = Rel5Set::from_bits(bits2);
        prop_assert_eq!(x.converse().converse(), x);
        prop_assert_eq!(x.compose(y).converse(), y.converse().compose(x.converse()));
    }

    /// The closure engine accepts any assertion set that has a concrete
    /// witness, and every singleton it derives matches the witness.
    #[test]
    fn closure_sound_on_witnessed_worlds(
        sets in prop::collection::vec(nonempty_set(), 3..8),
        pairs in prop::collection::vec((0usize..8, 0usize..8), 1..12),
    ) {
        let n = sets.len();
        let mut engine: AssertionEngine<u32> = AssertionEngine::new();
        for (i, j) in pairs {
            let (i, j) = (i % n, j % n);
            if i == j {
                continue;
            }
            let rel = relate(sets[i], sets[j]);
            let assertion = match rel {
                Rel5::Eq => Assertion::Equal,
                Rel5::Pp => Assertion::ContainedIn,
                Rel5::Ppi => Assertion::Contains,
                Rel5::Po => Assertion::MayBe,
                Rel5::Dr => Assertion::DisjointNonIntegrable,
            };
            let outcome = engine.assert(i as u32, j as u32, assertion, |x| format!("n{x}"));
            prop_assert!(outcome.is_ok(), "witnessed assertion rejected: {:?}", outcome);
        }
        // Every pinned relation agrees with the witness.
        for d in engine.pinned() {
            let actual = relate(sets[d.a as usize], sets[d.b as usize]);
            prop_assert_eq!(d.rel, actual, "derived {} for ({},{})", d.rel, d.a, d.b);
        }
    }
}

// ---------------------------------------------------------------------
// DDL round-trip on generated schemas
// ---------------------------------------------------------------------

fn arb_domain() -> impl Strategy<Value = Domain> {
    prop_oneof![
        Just(Domain::Char),
        Just(Domain::Int),
        Just(Domain::Real),
        Just(Domain::Bool),
        Just(Domain::Date),
        prop::collection::vec("[a-z]{1,6}", 1..4).prop_map(Domain::Enum),
        "[a-z][a-z0-9_]{0,8}"
            .prop_filter("not a reserved domain word", |s| {
                !matches!(
                    s.as_str(),
                    "char" | "string" | "int" | "integer" | "real" | "float" | "bool"
                        | "boolean" | "date" | "enum"
                )
            })
            .prop_map(Domain::Named),
    ]
}

type AttrSpec = (String, Domain, bool);

#[derive(Clone, Debug)]
struct ArbSchema {
    entities: Vec<Vec<AttrSpec>>,
    categories: Vec<(usize, Vec<AttrSpec>)>,
    rels: Vec<(usize, usize, u32, Option<u32>)>,
}

fn arb_attrs() -> impl Strategy<Value = Vec<AttrSpec>> {
    prop::collection::vec(("[a-z][a-z0-9_]{0,8}", arb_domain(), any::<bool>()), 0..5)
}

fn arb_schema() -> impl Strategy<Value = ArbSchema> {
    (
        prop::collection::vec(arb_attrs(), 1..5),
        prop::collection::vec((0usize..4, arb_attrs()), 0..3),
        prop::collection::vec((0usize..4, 0usize..4, 0u32..3, prop::option::of(1u32..5)), 0..4),
    )
        .prop_map(|(entities, categories, rels)| ArbSchema {
            entities,
            categories,
            rels,
        })
}

fn build(spec: &ArbSchema) -> Option<sit::ecr::Schema> {
    let mut b = SchemaBuilder::new("prop");
    let n = spec.entities.len();
    for (i, attrs) in spec.entities.iter().enumerate() {
        let mut ob = b.entity_set(format!("E{i}"));
        let mut seen = Vec::new();
        for (name, domain, key) in attrs {
            if seen.contains(name) {
                continue;
            }
            seen.push(name.clone());
            ob = if *key {
                ob.attr_key(name.clone(), domain.clone())
            } else {
                ob.attr(name.clone(), domain.clone())
            };
        }
        ob.finish();
    }
    for (ci, (parent, attrs)) in spec.categories.iter().enumerate() {
        let parent = format!("E{}", parent % n);
        let mut ob = b.category_of(format!("C{ci}"), &[&parent]).ok()?;
        let mut seen = Vec::new();
        for (name, domain, key) in attrs {
            if seen.contains(name) {
                continue;
            }
            seen.push(name.clone());
            ob = if *key {
                ob.attr_key(name.clone(), domain.clone())
            } else {
                ob.attr(name.clone(), domain.clone())
            };
        }
        ob.finish();
    }
    for (ri, (x, y, min, max)) in spec.rels.iter().enumerate() {
        let ox = b.object_by_name(&format!("E{}", x % n)).expect("exists");
        let oy = b.object_by_name(&format!("E{}", y % n)).expect("exists");
        let max = max.map(|m| m.max(*min).max(1));
        b.relationship(format!("R{ri}"))
            .participant(ox, Cardinality::new(*min, max))
            .participant(oy, Cardinality::MANY)
            .finish();
    }
    b.build().ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `parse(print(s)) == s` for arbitrary valid schemas. Shadowed
    /// category attributes with incompatible domains are rejected at build
    /// time, which `build` surfaces as `None` (skipped case).
    #[test]
    fn ddl_roundtrip(spec in arb_schema()) {
        if let Some(schema) = build(&spec) {
            let text = ddl::print(&schema);
            let back = ddl::parse(&text);
            prop_assert!(back.is_ok(), "re-parse failed: {back:?}\n{text}");
            prop_assert_eq!(back.unwrap(), schema);
        }
    }

    /// Generated workloads always integrate into valid schemas with a
    /// complete object map.
    #[test]
    fn integration_invariants(seed in 0u64..500, objects in 3usize..10, overlap in 0.0f64..1.0) {
        let pair = sit::datagen::GeneratorConfig {
            seed,
            objects_per_schema: objects,
            overlap,
            ..Default::default()
        }
        .generate_pair();
        let mut oracle = sit::datagen::GroundTruthOracle::new(&pair.truth);
        let driven = sit_bench_drive(&pair, &mut oracle);
        let (sa, sb) = driven.1;
        let session = driven.0;
        let result = session.integrate(sa, sb, &Default::default());
        prop_assert!(result.is_ok(), "{result:?}");
        let result = result.unwrap();
        // Every component object maps to some integrated object.
        for g in session.catalog().objects_of(sa).chain(session.catalog().objects_of(sb)) {
            prop_assert!(result.node_of(g).is_some(), "unmapped {g:?}");
        }
        // Provenance rows align with the schema's attributes.
        for (oid, obj) in result.schema.objects() {
            prop_assert_eq!(
                result.object_attr_prov[oid.index()].len(),
                obj.attributes.len()
            );
        }
        // The integrated schema passes ECR validation.
        prop_assert!(sit::ecr::validate(&result.schema).is_empty());
    }
}

/// Minimal phase 2+3 drive used by the property test (mirrors
/// `sit_bench::drive_session` without depending on the bench crate).
fn sit_bench_drive(
    pair: &sit::datagen::GeneratedPair,
    oracle: &mut sit::datagen::GroundTruthOracle<'_>,
) -> (Session, (sit::ecr::SchemaId, sit::ecr::SchemaId)) {
    use sit::datagen::DdaOracle;
    let mut session = Session::new();
    let sa = session.add_schema(pair.a.clone()).unwrap();
    let sb = session.add_schema(pair.b.clone()).unwrap();
    // Phase 2.
    let attrs_a = session.catalog().attrs_of(sa);
    let attrs_b = session.catalog().attrs_of(sb);
    for &ga in &attrs_a {
        for &gb in &attrs_b {
            let (Ok(da), Ok(db)) = (session.catalog().attr(ga), session.catalog().attr(gb)) else {
                continue;
            };
            if !da.domain.compatible(&db.domain) {
                continue;
            }
            let oa = owner(&session, ga);
            let ob = owner(&session, gb);
            let na = da.name.clone();
            let nb = db.name.clone();
            if oracle.attrs_equivalent(&oa, &na, &ob, &nb) {
                let _ = session.declare_equivalent(ga, gb);
            }
        }
    }
    // Phase 3 over the ranked candidates.
    for pair_cand in session.candidates(sa, sb) {
        let na = session
            .catalog()
            .schema(sa)
            .object(pair_cand.left.object)
            .name
            .clone();
        let nb = session
            .catalog()
            .schema(sb)
            .object(pair_cand.right.object)
            .name
            .clone();
        if let Some(assertion) = oracle.object_assertion(&na, &nb) {
            let _ = session.assert_objects(pair_cand.left, pair_cand.right, assertion);
        }
    }
    (session, (sa, sb))
}

fn owner(session: &Session, g: sit::core::catalog::GAttr) -> String {
    session
        .catalog()
        .schema(g.schema)
        .owner_name(g.owner)
        .unwrap_or("?")
        .to_owned()
}
