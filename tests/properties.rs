//! Property-based tests on the core invariants, spanning crates.
//!
//! * the RCC5 assertion algebra is sound and tight against concrete sets;
//! * the closure engine never rejects a *satisfiable* assertion set and
//!   never derives a relation the witness violates;
//! * the ECR DDL round-trips arbitrary generated schemas;
//! * integration maps every component object and produces a valid schema.
//!
//! Cases are drawn by the seeded in-tree runner (`sit_prng::prop`):
//! deterministic across runs, with reproducing seeds on failure.

use sit::core::assertion::{Assertion, Rel5, Rel5Set};
use sit::core::closure::AssertionEngine;
use sit::core::session::Session;
use sit::ecr::{ddl, Cardinality, Domain, SchemaBuilder};
use sit_prng::{prop, prop_assert, prop_assert_eq, Xoshiro256pp};

// ---------------------------------------------------------------------
// RCC5 algebra vs concrete sets
// ---------------------------------------------------------------------

/// Relation between two non-empty bitmask sets.
fn relate(a: u32, b: u32) -> Rel5 {
    if a == b {
        Rel5::Eq
    } else if a & b == 0 {
        Rel5::Dr
    } else if a & b == a {
        Rel5::Pp
    } else if a & b == b {
        Rel5::Ppi
    } else {
        Rel5::Po
    }
}

fn nonempty_set(rng: &mut Xoshiro256pp) -> u32 {
    rng.gen_range(1u32..(1 << 10))
}

/// Soundness of composition: the actual relation between a and c is
/// always among the composed possibilities.
#[test]
fn composition_is_sound() {
    prop::check_cases("composition_is_sound", 256, |rng| {
        let (a, b, c) = (nonempty_set(rng), nonempty_set(rng), nonempty_set(rng));
        let r = Rel5Set::only(relate(a, b));
        let s = Rel5Set::only(relate(b, c));
        let t = relate(a, c);
        prop_assert!(r.compose(s).contains(t));
        Ok(())
    });
}

/// Converse round-trips and distributes over composition.
#[test]
fn converse_identities() {
    prop::check_cases("converse_identities", 256, |rng| {
        let x = Rel5Set::from_bits(rng.gen_range(0u8..32));
        let y = Rel5Set::from_bits(rng.gen_range(0u8..32));
        prop_assert_eq!(x.converse().converse(), x);
        prop_assert_eq!(x.compose(y).converse(), y.converse().compose(x.converse()));
        Ok(())
    });
}

/// The closure engine accepts any assertion set that has a concrete
/// witness, and every singleton it derives matches the witness.
#[test]
fn closure_sound_on_witnessed_worlds() {
    prop::check_cases("closure_sound_on_witnessed_worlds", 256, |rng| {
        let n = rng.gen_range(3usize..8);
        let sets: Vec<u32> = (0..n).map(|_| nonempty_set(rng)).collect();
        let pair_count = rng.gen_range(1usize..12);
        let mut engine: AssertionEngine<u32> = AssertionEngine::new();
        for _ in 0..pair_count {
            let (i, j) = (rng.gen_range(0usize..8) % n, rng.gen_range(0usize..8) % n);
            if i == j {
                continue;
            }
            let rel = relate(sets[i], sets[j]);
            let assertion = match rel {
                Rel5::Eq => Assertion::Equal,
                Rel5::Pp => Assertion::ContainedIn,
                Rel5::Ppi => Assertion::Contains,
                Rel5::Po => Assertion::MayBe,
                Rel5::Dr => Assertion::DisjointNonIntegrable,
            };
            let outcome = engine.assert(i as u32, j as u32, assertion, |x| format!("n{x}"));
            prop_assert!(outcome.is_ok(), "witnessed assertion rejected: {:?}", outcome);
        }
        // Every pinned relation agrees with the witness.
        for d in engine.pinned() {
            let actual = relate(sets[d.a as usize], sets[d.b as usize]);
            prop_assert_eq!(d.rel, actual, "derived {} for ({},{})", d.rel, d.a, d.b);
        }
        Ok(())
    });
}

// ---------------------------------------------------------------------
// DDL round-trip on generated schemas
// ---------------------------------------------------------------------

/// An identifier matching `[a-z][a-z0-9_]{0,8}`.
fn ident(rng: &mut Xoshiro256pp) -> String {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
    let mut s = String::new();
    s.push(FIRST[rng.gen_range(0..FIRST.len())] as char);
    for _ in 0..rng.gen_range(0usize..9) {
        s.push(REST[rng.gen_range(0..REST.len())] as char);
    }
    s
}

fn arb_domain(rng: &mut Xoshiro256pp) -> Domain {
    match rng.gen_range(0u32..7) {
        0 => Domain::Char,
        1 => Domain::Int,
        2 => Domain::Real,
        3 => Domain::Bool,
        4 => Domain::Date,
        5 => {
            let n = rng.gen_range(1usize..4);
            Domain::Enum(
                (0..n)
                    .map(|_| {
                        (0..rng.gen_range(1usize..7))
                            .map(|_| (b'a' + rng.gen_range(0u8..26)) as char)
                            .collect()
                    })
                    .collect(),
            )
        }
        _ => loop {
            let name = ident(rng);
            let reserved = matches!(
                name.as_str(),
                "char" | "string" | "int" | "integer" | "real" | "float" | "bool"
                    | "boolean" | "date" | "enum"
            );
            if !reserved {
                break Domain::Named(name);
            }
        },
    }
}

type AttrSpec = (String, Domain, bool);

#[derive(Clone, Debug)]
struct ArbSchema {
    entities: Vec<Vec<AttrSpec>>,
    categories: Vec<(usize, Vec<AttrSpec>)>,
    rels: Vec<(usize, usize, u32, Option<u32>)>,
}

fn arb_attrs(rng: &mut Xoshiro256pp) -> Vec<AttrSpec> {
    (0..rng.gen_range(0usize..5))
        .map(|_| (ident(rng), arb_domain(rng), rng.gen_bool(0.5)))
        .collect()
}

fn arb_schema(rng: &mut Xoshiro256pp) -> ArbSchema {
    let entities = (0..rng.gen_range(1usize..5)).map(|_| arb_attrs(rng)).collect();
    let categories = (0..rng.gen_range(0usize..3))
        .map(|_| (rng.gen_range(0usize..4), arb_attrs(rng)))
        .collect();
    let rels = (0..rng.gen_range(0usize..4))
        .map(|_| {
            (
                rng.gen_range(0usize..4),
                rng.gen_range(0usize..4),
                rng.gen_range(0u32..3),
                if rng.gen_bool(0.5) {
                    Some(rng.gen_range(1u32..5))
                } else {
                    None
                },
            )
        })
        .collect();
    ArbSchema {
        entities,
        categories,
        rels,
    }
}

fn build(spec: &ArbSchema) -> Option<sit::ecr::Schema> {
    let mut b = SchemaBuilder::new("prop");
    let n = spec.entities.len();
    for (i, attrs) in spec.entities.iter().enumerate() {
        let mut ob = b.entity_set(format!("E{i}"));
        let mut seen = Vec::new();
        for (name, domain, key) in attrs {
            if seen.contains(name) {
                continue;
            }
            seen.push(name.clone());
            ob = if *key {
                ob.attr_key(name.clone(), domain.clone())
            } else {
                ob.attr(name.clone(), domain.clone())
            };
        }
        ob.finish();
    }
    for (ci, (parent, attrs)) in spec.categories.iter().enumerate() {
        let parent = format!("E{}", parent % n);
        let mut ob = b.category_of(format!("C{ci}"), &[&parent]).ok()?;
        let mut seen = Vec::new();
        for (name, domain, key) in attrs {
            if seen.contains(name) {
                continue;
            }
            seen.push(name.clone());
            ob = if *key {
                ob.attr_key(name.clone(), domain.clone())
            } else {
                ob.attr(name.clone(), domain.clone())
            };
        }
        ob.finish();
    }
    for (ri, (x, y, min, max)) in spec.rels.iter().enumerate() {
        let ox = b.object_by_name(&format!("E{}", x % n)).expect("exists");
        let oy = b.object_by_name(&format!("E{}", y % n)).expect("exists");
        let max = max.map(|m| m.max(*min).max(1));
        b.relationship(format!("R{ri}"))
            .participant(ox, Cardinality::new(*min, max))
            .participant(oy, Cardinality::MANY)
            .finish();
    }
    b.build().ok()
}

/// `parse(print(s)) == s` for arbitrary valid schemas. Shadowed
/// category attributes with incompatible domains are rejected at build
/// time, which `build` surfaces as `None` (skipped case).
#[test]
fn ddl_roundtrip() {
    prop::check_cases("ddl_roundtrip", 64, |rng| {
        let spec = arb_schema(rng);
        if let Some(schema) = build(&spec) {
            let text = ddl::print(&schema);
            let back = ddl::parse(&text);
            prop_assert!(back.is_ok(), "re-parse failed: {back:?}\n{text}");
            prop_assert_eq!(back.unwrap(), schema);
        }
        Ok(())
    });
}

/// Generated workloads always integrate into valid schemas with a
/// complete object map.
#[test]
fn integration_invariants() {
    prop::check_cases("integration_invariants", 64, |rng| {
        let pair = sit::datagen::GeneratorConfig {
            seed: rng.gen_range(0u64..500),
            objects_per_schema: rng.gen_range(3usize..10),
            overlap: rng.gen_f64(),
            ..Default::default()
        }
        .generate_pair();
        let mut oracle = sit::datagen::GroundTruthOracle::new(&pair.truth);
        let driven = sit_bench_drive(&pair, &mut oracle);
        let (sa, sb) = driven.1;
        let session = driven.0;
        let result = session.integrate(sa, sb, &Default::default());
        prop_assert!(result.is_ok(), "{result:?}");
        let result = result.unwrap();
        // Every component object maps to some integrated object.
        for g in session.catalog().objects_of(sa).chain(session.catalog().objects_of(sb)) {
            prop_assert!(result.node_of(g).is_some(), "unmapped {g:?}");
        }
        // Provenance rows align with the schema's attributes.
        for (oid, obj) in result.schema.objects() {
            prop_assert_eq!(
                result.object_attr_prov[oid.index()].len(),
                obj.attributes.len()
            );
        }
        // The integrated schema passes ECR validation.
        prop_assert!(sit::ecr::validate(&result.schema).is_empty());
        Ok(())
    });
}

// ---------------------------------------------------------------------
// Phase-2 math at scale: sparse OCS vs dense, ranking totality
// ---------------------------------------------------------------------

/// Across many generated workloads, the sparse OCS derivation agrees
/// exactly with the dense matrix (including which entries are zero),
/// and the ranked candidate list is a total, stable, deterministic
/// order over the non-zero entries.
#[test]
fn sparse_ocs_matches_dense_and_ranking_is_total() {
    use sit::core::resemblance::{ocs_matrix, ocs_sparse};
    prop::check_cases("sparse_ocs_vs_dense", 64, |rng| {
        let pair = sit::datagen::GeneratorConfig {
            seed: rng.gen_range(0u64..10_000),
            objects_per_schema: rng.gen_range(3usize..12),
            overlap: rng.gen_f64(),
            ..Default::default()
        }
        .generate_pair();
        let mut oracle = sit::datagen::GroundTruthOracle::new(&pair.truth);
        let (session, (sa, sb)) = sit_bench_drive(&pair, &mut oracle);
        let catalog = session.catalog();
        let equiv = session.equivalences();

        // Dense and sparse derivations agree entry-for-entry: the
        // sparse map holds exactly the non-zero dense cells.
        let dense = ocs_matrix(catalog, equiv, sa, sb);
        let sparse = ocs_sparse(catalog, equiv, sa, sb);
        let mut nonzero = 0usize;
        for (i, row) in dense.iter().enumerate() {
            for (j, &count) in row.iter().enumerate() {
                let key = (sit::ecr::ObjectId::new(i as u32), sit::ecr::ObjectId::new(j as u32));
                match sparse.get(&key) {
                    Some(&s) => {
                        prop_assert_eq!(s, count, "sparse disagrees at ({i},{j})");
                        prop_assert!(count > 0, "sparse carries a zero entry at ({i},{j})");
                        nonzero += 1;
                    }
                    None => prop_assert_eq!(count, 0, "dense non-zero at ({i},{j}) missing"),
                }
            }
        }
        prop_assert_eq!(sparse.len(), nonzero, "sparse has extra entries");

        // Ranking: one row per non-zero cell, deterministic across
        // calls, and strictly totally ordered by the documented key
        // (ratio desc, equivalent count desc, definition order asc).
        let ranked = session.candidates(sa, sb);
        prop_assert_eq!(ranked.len(), nonzero, "ranking row count != non-zero OCS cells");
        prop_assert_eq!(
            &session.candidates(sa, sb),
            &ranked,
            "ranking is not deterministic"
        );
        for w in ranked.windows(2) {
            let (p, q) = (&w[0], &w[1]);
            let name_p = (catalog.obj_display(p.left), catalog.obj_display(p.right));
            let name_q = (catalog.obj_display(q.left), catalog.obj_display(q.right));
            let strictly_before =
                p.ratio > q.ratio || (p.ratio == q.ratio && name_p < name_q);
            prop_assert!(
                strictly_before,
                "ranking not a strict total order: ({:?} {}) then ({:?} {})",
                name_p, p.ratio, name_q, q.ratio
            );
        }
        for row in &ranked {
            prop_assert!(row.equivalent >= 1, "ranked pair with zero OCS");
            let key = (row.left.object, row.right.object);
            prop_assert_eq!(
                sparse.get(&key).copied(),
                Some(row.equivalent),
                "ranked count disagrees with OCS at {key:?}"
            );
            prop_assert!(row.ratio > 0.0 && row.ratio.is_finite());
        }
        Ok(())
    });
}

/// Minimal phase 2+3 drive used by the property test (mirrors
/// `sit_bench::drive_session` without depending on the bench crate).
fn sit_bench_drive(
    pair: &sit::datagen::GeneratedPair,
    oracle: &mut sit::datagen::GroundTruthOracle<'_>,
) -> (Session, (sit::ecr::SchemaId, sit::ecr::SchemaId)) {
    use sit::datagen::DdaOracle;
    let mut session = Session::new();
    let sa = session.add_schema(pair.a.clone()).unwrap();
    let sb = session.add_schema(pair.b.clone()).unwrap();
    // Phase 2.
    let attrs_a = session.catalog().attrs_of(sa);
    let attrs_b = session.catalog().attrs_of(sb);
    for &ga in &attrs_a {
        for &gb in &attrs_b {
            let (Ok(da), Ok(db)) = (session.catalog().attr(ga), session.catalog().attr(gb)) else {
                continue;
            };
            if !da.domain.compatible(&db.domain) {
                continue;
            }
            let oa = owner(&session, ga);
            let ob = owner(&session, gb);
            let na = da.name.clone();
            let nb = db.name.clone();
            if oracle.attrs_equivalent(&oa, &na, &ob, &nb) {
                let _ = session.declare_equivalent(ga, gb);
            }
        }
    }
    // Phase 3 over the ranked candidates.
    for pair_cand in session.candidates(sa, sb) {
        let na = session
            .catalog()
            .schema(sa)
            .object(pair_cand.left.object)
            .name
            .clone();
        let nb = session
            .catalog()
            .schema(sb)
            .object(pair_cand.right.object)
            .name
            .clone();
        if let Some(assertion) = oracle.object_assertion(&na, &nb) {
            let _ = session.assert_objects(pair_cand.left, pair_cand.right, assertion);
        }
    }
    (session, (sa, sb))
}

fn owner(session: &Session, g: sit::core::catalog::GAttr) -> String {
    session
        .catalog()
        .schema(g.schema)
        .owner_name(g.owner)
        .unwrap_or("?")
        .to_owned()
}
