//! `sit` — the schema integration tool, command line.
//!
//! ```text
//! sit                               interactive tool (reads stdin)
//! sit --load S.sit                  preload a session script (repeatable)
//! sit --script EVENTS [--frames]    drive the tool from an event file
//! sit --list                        list loaded schemas and exit
//! sit --render NAME                 print a schema as text and exit
//! sit --dot NAME                    print a schema as Graphviz DOT and exit
//! sit --integrate A B [--pull-up]   integrate two schemas and print the result
//! sit --save OUT                    save the session script before exiting
//! sit --to-integrated SCHEMA "Q"    translate a view query (with --integrate)
//! sit --to-components "Q"           translate a global query (with --integrate)
//! sit serve [--addr H:P] [--stdio] [--data-dir DIR]
//!                                   serve sessions over line-delimited JSON;
//!                                   --data-dir journals mutations and
//!                                   recovers sessions on restart
//! sit client ADDR [--timeout-ms N] [--retries N]
//!                                   pipe request lines to a running
//!                                   server; exits 2 on typed error frames
//! sit trace OUT.json [--load FILE]  run an integration session in-process
//!                                   and export its span trace as Chrome
//!                                   trace-event JSON (chrome://tracing,
//!                                   Perfetto)
//! ```
//!
//! Event files for `--script`: one event per line — `key <chars>` sends
//! each character as a menu choice, `text <line>` submits a typed line
//! (`text` alone submits an empty line), `#` starts a comment.
//! Interactive mode uses the same rule as the paper's forms: a line with
//! exactly one character is a menu choice, anything else (including an
//! empty line) is typed input.

use std::io::{BufRead, Write};

use sit::core::mapping::Query;
use sit::core::script;
use sit::core::session::Session;
use sit::ecr::render;
use sit::server::client::error_code;
use sit::server::server::{serve_stdio, PersistOptions, Server, ServerConfig};
use sit::server::{FsyncPolicy, PersistConfig};
use sit::server::{Client, ClientConfig, Json, Request};
use sit::tui::app::App;
use sit::tui::event::Event;

struct Args {
    load: Vec<String>,
    script: Option<String>,
    frames: bool,
    list: bool,
    render: Option<String>,
    dot: Option<String>,
    integrate: Option<(String, String)>,
    pull_up: bool,
    save: Option<String>,
    to_integrated: Option<(String, String)>,
    to_components: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        load: Vec::new(),
        script: None,
        frames: false,
        list: false,
        render: None,
        dot: None,
        integrate: None,
        pull_up: false,
        save: None,
        to_integrated: None,
        to_components: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut need = |what: &str| it.next().ok_or(format!("{what} needs a value"));
        match a.as_str() {
            "--load" => args.load.push(need("--load")?),
            "--script" => args.script = Some(need("--script")?),
            "--frames" => args.frames = true,
            "--list" => args.list = true,
            "--render" => args.render = Some(need("--render")?),
            "--dot" => args.dot = Some(need("--dot")?),
            "--integrate" => {
                let a = need("--integrate")?;
                let b = need("--integrate")?;
                args.integrate = Some((a, b));
            }
            "--pull-up" => args.pull_up = true,
            "--save" => args.save = Some(need("--save")?),
            "--to-integrated" => {
                let schema = need("--to-integrated")?;
                let q = need("--to-integrated")?;
                args.to_integrated = Some((schema, q));
            }
            "--to-components" => args.to_components = Some(need("--to-components")?),
            "--help" | "-h" => {
                print!("{}", HELP);
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

const HELP: &str = "\
sit - interactive schema integration (ICDE 1988 reproduction)

  sit                               interactive tool (reads stdin)
  sit --load S.sit                  preload a session script (repeatable)
  sit --script EVENTS [--frames]    drive the tool from an event file
  sit --list                        list loaded schemas and exit
  sit --render NAME | --dot NAME    print one schema and exit
  sit --integrate A B [--pull-up]   integrate two schemas, print the result
  sit --to-integrated SCHEMA QUERY  translate a view query (with --integrate)
  sit --to-components QUERY         translate a global query (with --integrate)
  sit --save OUT                    save the session script

  sit serve [--addr HOST:PORT] [--stdio] [--threads N]
            [--queue N] [--max-sessions N] [--ttl SECS]
            [--data-dir DIR] [--fsync always|every-N|never]
            [--snapshot-every N]
                                    serve integration sessions over
                                    newline-delimited JSON (TCP, or
                                    stdin/stdout with --stdio); port 0
                                    picks a free port, printed on the
                                    `listening on ...` line.
                                    --data-dir makes sessions durable:
                                    mutations are journaled (write-ahead)
                                    to DIR and recovered on restart;
                                    --fsync picks the journal fsync
                                    policy (default always) and
                                    --snapshot-every compacts the journal
                                    into a snapshot every N records
                                    (default 64, 0 disables)
  sit client ADDR [--timeout-ms N] [--retries N]
                                    connect to a server; request lines
                                    from stdin, response lines to stdout.
                                    Idempotent verbs retry with jittered
                                    backoff; --timeout-ms 0 disables the
                                    socket timeout. Exits 2 (with the
                                    error code on stderr) if any response
                                    was a typed error frame
  sit trace OUT.json [--load FILE]  drive an integration session through
                                    an in-process service and write the
                                    span trace as Chrome trace-event
                                    JSON, viewable in chrome://tracing or
                                    Perfetto. Without --load it runs the
                                    built-in two-schema demo (all four
                                    phases); --load (repeatable) traces
                                    loading the given session scripts
                                    instead
";

fn main() {
    if let Err(e) = run() {
        eprintln!("sit: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    // Subcommands first: `sit serve ...` and `sit client ...` have their
    // own flag sets and never reach the session/TUI pipeline.
    let mut argv = std::env::args().skip(1);
    match argv.next().as_deref() {
        Some("serve") => return serve(argv),
        Some("client") => return client(argv),
        Some("trace") => return trace(argv),
        _ => {}
    }
    let args = parse_args()?;

    // Load session scripts / DDL files. Files are concatenated and loaded
    // as one script so every file's equivalences and assertions survive
    // (schema blocks parse before directives regardless of file order).
    let mut combined = String::new();
    for path in &args.load {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        combined.push_str(&text);
        combined.push('\n');
    }
    let session = if combined.trim().is_empty() {
        Session::new()
    } else {
        script::load(&combined).map_err(|e| e.to_string())?
    };

    if args.list {
        for (_, schema) in session.catalog().schemas() {
            println!(
                "{} ({} object classes, {} relationship sets)",
                schema.name(),
                schema.object_count(),
                schema.relationship_count()
            );
        }
        return Ok(());
    }
    if let Some(name) = &args.render {
        let sid = session
            .catalog()
            .by_name(name)
            .ok_or(format!("unknown schema `{name}`"))?;
        print!("{}", render::render(session.catalog().schema(sid)));
        return Ok(());
    }
    if let Some(name) = &args.dot {
        let sid = session
            .catalog()
            .by_name(name)
            .ok_or(format!("unknown schema `{name}`"))?;
        print!("{}", render::to_dot(session.catalog().schema(sid)));
        return Ok(());
    }

    if let Some((a, b)) = &args.integrate {
        let sa = session
            .catalog()
            .by_name(a)
            .ok_or(format!("unknown schema `{a}`"))?;
        let sb = session
            .catalog()
            .by_name(b)
            .ok_or(format!("unknown schema `{b}`"))?;
        let options = sit::core::integrate::IntegrationOptions {
            pull_up_common_attrs: args.pull_up,
            ..Default::default()
        };
        let (result, mappings) = session
            .integrate_with_mappings(sa, sb, &options)
            .map_err(|e| e.to_string())?;
        print!("{}", render::render(&result.schema));
        if let Some((schema, q)) = &args.to_integrated {
            let q: Query = q.parse()?;
            println!("\nview query     : [{schema}] {q}");
            println!(
                "against global : {}",
                mappings.to_integrated(schema, &q).map_err(|e| e.to_string())?
            );
        }
        if let Some(q) = &args.to_components {
            let q: Query = q.parse()?;
            println!("\nglobal query : {q}");
            println!(
                "fan-out      :\n{}",
                mappings.to_components(&q).map_err(|e| e.to_string())?
            );
        }
        if let Some(out) = &args.save {
            std::fs::write(out, script::save(&session)).map_err(|e| e.to_string())?;
            println!("\nsession saved to {out}");
        }
        return Ok(());
    }

    // TUI modes.
    let mut app = App::with_session(session);
    if let Some(path) = &args.script {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let events = parse_event_file(&text)?;
        for event in events {
            app.handle(event);
            if args.frames {
                println!("{}", app.render());
            }
        }
        if !args.frames {
            println!("{}", app.render());
        }
    } else {
        interactive(&mut app)?;
    }
    if let Some(out) = &args.save {
        std::fs::write(out, script::save(app.session())).map_err(|e| e.to_string())?;
        eprintln!("session saved to {out}");
    }
    Ok(())
}

/// `sit serve`: run the session server on TCP (or stdio).
fn serve(mut argv: impl Iterator<Item = String>) -> Result<(), String> {
    let mut addr = "127.0.0.1:4088".to_owned();
    let mut stdio = false;
    let mut config = ServerConfig::default();
    let mut data_dir: Option<String> = None;
    let mut persist_config = PersistConfig::default();
    let mut persist_flag: Option<&'static str> = None;
    while let Some(a) = argv.next() {
        let mut need = |what: &str| argv.next().ok_or(format!("{what} needs a value"));
        match a.as_str() {
            "--addr" => addr = need("--addr")?,
            "--stdio" => stdio = true,
            "--threads" => {
                config.threads = parse_num(&need("--threads")?, "--threads")?;
                if config.threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
            }
            "--queue" => config.queue_cap = parse_num(&need("--queue")?, "--queue")?,
            "--max-sessions" => {
                config.store.max_sessions = parse_num(&need("--max-sessions")?, "--max-sessions")?;
            }
            "--ttl" => {
                let secs: u64 = parse_num(&need("--ttl")?, "--ttl")?;
                config.store.ttl =
                    (secs > 0).then(|| std::time::Duration::from_secs(secs));
            }
            "--data-dir" => data_dir = Some(need("--data-dir")?),
            "--fsync" => {
                let value = need("--fsync")?;
                persist_config.fsync = FsyncPolicy::parse(&value)
                    .ok_or(format!("--fsync wants `always`, `every-N`, or `never`, got `{value}`"))?;
                persist_flag = Some("--fsync");
            }
            "--snapshot-every" => {
                persist_config.snapshot_every =
                    parse_num(&need("--snapshot-every")?, "--snapshot-every")?;
                persist_flag = Some("--snapshot-every");
            }
            other => return Err(format!("unknown `serve` argument `{other}`")),
        }
    }
    match data_dir {
        Some(dir) => {
            config.persist = Some(PersistOptions {
                data_dir: dir.into(),
                config: persist_config,
            });
        }
        None => {
            if let Some(flag) = persist_flag {
                return Err(format!("{flag} needs --data-dir"));
            }
        }
    }
    if stdio {
        let service = sit::server::server::build_service(&config).map_err(|e| e.to_string())?;
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        return serve_stdio(&service, stdin.lock(), stdout.lock()).map_err(|e| e.to_string());
    }
    let server = Server::bind(addr.as_str(), config).map_err(|e| format!("{addr}: {e}"))?;
    // The smoke tests (and anyone using port 0) discover the actual
    // port from this line; keep its shape stable.
    let local = server.local_addr().map_err(|e| e.to_string())?;
    println!("listening on {local}");
    std::io::stdout().flush().ok();
    server.run().map_err(|e| e.to_string())
}

/// `sit client`: forward request lines from stdin, print response lines.
///
/// Exits 0 only if every response was a success frame; any typed error
/// frame is echoed to stdout as usual but also reported on stderr, and
/// the process exits with status 2 so shell pipelines can detect
/// server-side failures without parsing JSON.
fn client(mut argv: impl Iterator<Item = String>) -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut config = ClientConfig::default();
    while let Some(a) = argv.next() {
        let mut need = |what: &str| argv.next().ok_or(format!("{what} needs a value"));
        match a.as_str() {
            "--timeout-ms" => {
                let ms: u64 = parse_num(&need("--timeout-ms")?, "--timeout-ms")?;
                config.timeout = (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            "--retries" => config.retry.retries = parse_num(&need("--retries")?, "--retries")?,
            other if addr.is_none() && !other.starts_with('-') => addr = Some(other.to_owned()),
            other => return Err(format!("unknown `client` argument `{other}`")),
        }
    }
    let addr = addr.ok_or("client needs an ADDR argument")?;
    let mut client =
        Client::connect_with(addr.as_str(), config).map_err(|e| format!("{addr}: {e}"))?;
    let stdin = std::io::stdin();
    let mut saw_error = false;
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        if line.trim().is_empty() {
            continue;
        }
        // Typed requests go through the retry/backoff path (idempotent
        // verbs only); anything unparsable is sent raw so the server
        // answers with its typed parse error. Frames carrying a
        // `trace_id` also go raw: the typed re-encode would drop the
        // field before the server could attach it to the request span.
        let request = Json::parse(&line)
            .ok()
            .filter(|v| v.get("trace_id").is_none())
            .and_then(|v| Request::from_json(&v).ok());
        let response = match request {
            Some(req) => client
                .call_retrying(&req)
                .map(|frame| frame.encode())
                .map_err(|e| e.to_string())?,
            None => client.call_raw(&line).map_err(|e| e.to_string())?,
        };
        println!("{response}");
        if let Some(code) = Json::parse(&response).ok().as_ref().and_then(error_code) {
            saw_error = true;
            eprintln!("sit client: server error: {code}");
        }
    }
    if saw_error {
        std::process::exit(2);
    }
    Ok(())
}

/// `sit trace`: drive a session through an in-process [`Service`] and
/// export its span ring as Chrome trace-event JSON.
///
/// The default workload is the paper's two-schema demo end to end
/// (collection, equivalences, candidate ranking, assertions, matrix,
/// integration with mappings, save), so the exported timeline shows the
/// request lifecycle spans nesting the engine phases.
fn trace(mut argv: impl Iterator<Item = String>) -> Result<(), String> {
    let mut out: Option<String> = None;
    let mut load: Vec<String> = Vec::new();
    while let Some(a) = argv.next() {
        let mut need = |what: &str| argv.next().ok_or(format!("{what} needs a value"));
        match a.as_str() {
            "--load" => load.push(need("--load")?),
            other if out.is_none() && !other.starts_with('-') => out = Some(other.to_owned()),
            other => return Err(format!("unknown `trace` argument `{other}`")),
        }
    }
    let out = out.ok_or("trace needs an OUT.json argument")?;

    let frames = if load.is_empty() {
        demo_frames()
    } else {
        let mut frames = Vec::new();
        for path in &load {
            let script = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            frames.push(Request::Load { script }.to_json().encode());
        }
        frames.push(r#"{"op":"stats"}"#.to_owned());
        frames
    };

    let service = sit::server::Service::new(sit::server::StoreConfig::default());
    let mut errors = 0usize;
    for frame in &frames {
        let response = service.handle_line(frame).frame;
        if let Some(code) = Json::parse(&response).ok().as_ref().and_then(error_code) {
            errors += 1;
            eprintln!("sit trace: server error `{code}` for {frame}");
        }
    }
    let tracer = service.tracer();
    let events = tracer.len();
    std::fs::write(&out, tracer.export_chrome()).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "trace: {events} span events ({} dropped) from {} requests -> {out}",
        tracer.dropped(),
        frames.len()
    );
    if errors > 0 {
        return Err(format!("{errors} request(s) answered with a typed error"));
    }
    Ok(())
}

/// The built-in `sit trace` workload: the ICDE 1988 running example
/// through every phase, as wire frames.
fn demo_frames() -> Vec<String> {
    const DDL1: &str = "schema sc1 { entity Student { Name: char key; GPA: real; } entity Department { Dname: char key; } relationship Majors { Student (0,1); Department (0,n); } }";
    const DDL2: &str = "schema sc2 { entity Grad_student { Name: char key; GPA: real; } entity Department { Dname: char key; } relationship Majors { Grad_student (0,1); Department (0,n); } }";
    vec![
        r#"{"op":"ping"}"#.to_owned(),
        r#"{"op":"open"}"#.to_owned(),
        format!(r#"{{"op":"add_schema","session":"1","ddl":"{DDL1}"}}"#),
        format!(r#"{{"op":"add_schema","session":"1","ddl":"{DDL2}"}}"#),
        r#"{"op":"equiv","session":"1","a":"sc1.Student.Name","b":"sc2.Grad_student.Name"}"#.to_owned(),
        r#"{"op":"equiv","session":"1","a":"sc1.Department.Dname","b":"sc2.Department.Dname"}"#.to_owned(),
        r#"{"op":"candidates","session":"1","a":"sc1","b":"sc2"}"#.to_owned(),
        r#"{"op":"rel_candidates","session":"1","a":"sc1","b":"sc2"}"#.to_owned(),
        r#"{"op":"assert","session":"1","a":"sc1.Department","b":"sc2.Department","assertion":"equals"}"#.to_owned(),
        r#"{"op":"assert","session":"1","a":"sc1.Student","b":"sc2.Grad_student","assertion":"contains"}"#.to_owned(),
        r#"{"op":"rel_assert","session":"1","a":"sc1.Majors","b":"sc2.Majors","assertion":"equals"}"#.to_owned(),
        r#"{"op":"matrix","session":"1","a":"sc1","b":"sc2"}"#.to_owned(),
        r#"{"op":"integrate","session":"1","a":"sc1","b":"sc2","pull_up":false,"mappings":true}"#.to_owned(),
        r#"{"op":"save","session":"1"}"#.to_owned(),
        r#"{"op":"stats"}"#.to_owned(),
        r#"{"op":"metrics_text"}"#.to_owned(),
    ]
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("{flag}: `{s}` is not a number"))
}

/// Parse a `--script` event file.
fn parse_event_file(text: &str) -> Result<Vec<Event>, String> {
    let mut out = Vec::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.trim_start().starts_with('#') || line.trim().is_empty() {
            continue;
        }
        if let Some(keys) = line.strip_prefix("key ") {
            out.extend(keys.trim().chars().map(Event::Key));
        } else if line == "text" {
            out.push(Event::text(""));
        } else if let Some(t) = line.strip_prefix("text ") {
            out.push(Event::text(t));
        } else {
            return Err(format!("line {}: expected `key ...` or `text ...`", no + 1));
        }
    }
    Ok(out)
}

/// Interactive loop: render, read a line, convert to an event.
fn interactive(app: &mut App) -> Result<(), String> {
    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    loop {
        println!("{}", app.render());
        print!("> ");
        std::io::stdout().flush().ok();
        let Some(line) = lines.next() else {
            return Ok(()); // EOF ends the session
        };
        let line = line.map_err(|e| e.to_string())?;
        let mut chars = line.chars();
        let event = match (chars.next(), chars.next()) {
            (Some(c), None) => Event::Key(c),
            _ => Event::text(line),
        };
        app.handle(event);
    }
}
