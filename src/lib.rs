#![warn(missing_docs)]
//! # sit — A Tool for Integrating Conceptual Schemas and User Views
//!
//! A Rust reproduction of Sheth, Larson, Cornelio & Navathe's ICDE 1988
//! schema-integration tool, as a set of library crates re-exported here:
//!
//! * [`ecr`] — the Entity-Category-Relationship conceptual data model
//!   (schemas, categories, structural constraints, a text DDL).
//! * [`core`] — the integration engine: attribute equivalence (ACS),
//!   object-class similarity (OCS) and the attribute-ratio ranking, the
//!   five-assertion algebra with transitive derivation and conflict
//!   detection, cluster/lattice integration, and request mappings.
//! * [`translate`] — relational and hierarchical schemas abstracted into
//!   ECR (the Navathe–Awong front end).
//! * [`matcher`] — the future-work resemblance extensions: string
//!   similarity, synonym dictionaries, weighted multi-function
//!   resemblance, schema-level resemblance, cross-construct candidates.
//! * [`datagen`] — synthetic schema workloads with ground truth and DDA
//!   oracles.
//! * [`tui`] — the interactive tool: thirteen screens over a scriptable
//!   terminal engine.
//! * [`server`] — integration sessions as a service: a newline-delimited
//!   JSON protocol over TCP or stdio (`sit serve`), with a session store,
//!   a bounded worker pool, and per-verb latency metrics.
//! * [`obs`] — std-only observability: lock-cheap span tracing with
//!   Chrome trace-event export (`sit trace`), base-2 histograms and
//!   counters with Prometheus text exposition, and injectable clocks.
//!
//! Start with [`core::session::Session`] for programmatic integration or
//! [`tui::App`] for the interactive tool; `examples/quickstart.rs` walks
//! the four phases end to end.

pub use sit_core as core;
pub use sit_datagen as datagen;
pub use sit_ecr as ecr;
pub use sit_matcher as matcher;
pub use sit_obs as obs;
pub use sit_server as server;
pub use sit_translate as translate;
pub use sit_tui as tui;
