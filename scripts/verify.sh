#!/usr/bin/env bash
# Tier-1 verification: the workspace must build, test, and resolve its
# dependency graph fully offline (no registry crates at all), and the
# session server must come up, answer a scripted session, and shut down
# cleanly.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo build --release (offline) =="
cargo build --release --workspace --all-targets

echo "== cargo test -q (offline) =="
cargo test -q --workspace

echo "== dependency graph is the workspace allowlist, nothing else =="
# The resolved graph must be exactly the in-tree crates below: every
# package must be path-sourced and on the allowlist. Anything else —
# a registry/git source, or a new in-tree crate nobody allowlisted —
# fails loudly with the offending crate named.
meta_json="$(mktemp)"
trap 'rm -f "$meta_json"' EXIT
cargo metadata --format-version 1 --locked >"$meta_json"
python3 - "$meta_json" <<'EOF'
import json, sys

ALLOWED = {
    "sit",
    "sit-bench",
    "sit-core",
    "sit-datagen",
    "sit-ecr",
    "sit-matcher",
    "sit-obs",
    "sit-prng",
    "sit-server",
    "sit-translate",
    "sit-tui",
}

with open(sys.argv[1]) as fh:
    meta = json.load(fh)
bad = []
for pkg in meta["packages"]:
    if pkg["source"] is not None:
        bad.append(
            f'{pkg["name"]} {pkg["version"]}: external source {pkg["source"]}'
        )
    elif pkg["name"] not in ALLOWED:
        bad.append(
            f'{pkg["name"]} {pkg["version"]}: path crate not on the allowlist '
            f"(add it to scripts/verify.sh deliberately)"
        )
if bad:
    print("FAIL: dependency graph contains non-allowlisted crates:", file=sys.stderr)
    for line in bad:
        print(f"  {line}", file=sys.stderr)
    sys.exit(1)
names = sorted(p["name"] for p in meta["packages"])
print(f"ok: {len(names)} workspace crates, no external deps: {', '.join(names)}")
EOF

echo "== no stray println!/eprintln! outside bin targets, the bench harness, and sit-obs =="
# Library code reports through sit-obs (spans, counters, histograms) or
# returns values — printing belongs to binaries (src/bin), the bench
# harness's table output, and the obs crate itself.
if grep -rn 'println!\|eprintln!' src crates/*/src --include='*.rs' \
    | grep -v '^src/bin/' | grep -v '^crates/bench/' | grep -v '^crates/obs/'; then
  echo "FAIL: stray print in library code (route it through sit-obs or return it)" >&2
  exit 1
fi
echo "ok: library crates are print-free"

echo "== traced smoke session (sit trace -> Chrome trace JSON) =="
trace_json="$(mktemp)"
trap 'rm -f "$meta_json" "$trace_json"' EXIT
./target/release/sit trace "$trace_json" | sed 's/^/  /'
python3 - "$trace_json" <<'EOF'
import json, sys

with open(sys.argv[1]) as fh:
    trace = json.load(fh)
events = trace["traceEvents"]
assert events, "exported trace has no events"
for e in events:
    assert e["ph"] in ("X", "i"), e
    assert isinstance(e["ts"], (int, float)), e
    assert e["pid"] == 1, e
    if e["ph"] == "X":
        assert isinstance(e["dur"], (int, float)), e
names = {e["name"] for e in events}
needed = [
    # request lifecycle (server layer)
    "request", "parse", "dispatch", "encode",
    # engine phases (core layer)
    "session.add_schema", "acs.declare_equivalent", "ocs.ranked_pairs",
    "closure.assert", "integrate", "integrate.lattice", "integrate.rels",
]
missing = [n for n in needed if n not in names]
assert not missing, f"trace is missing spans: {missing}"
print(f"ok: {len(events)} events, all lifecycle + engine spans present")
EOF

echo "== chaos determinism (fixed seeds 101-124, cross-process trace diff) =="
# The suite itself runs every seed twice in-process and asserts the
# traces match; here we additionally run the whole suite in two separate
# processes and require the combined event-trace dumps to be identical —
# catching any nondeterminism tied to process state (ASLR, hash seeds,
# thread scheduling) that an in-process comparison could mask.
chaos_a="$(mktemp)"
chaos_b="$(mktemp)"
trap 'rm -f "$meta_json" "$trace_json" "$chaos_a" "$chaos_b"' EXIT
for dump in "$chaos_a" "$chaos_b"; do
  SIT_CHAOS_TRACE="$dump" cargo test -q --release -p sit-server --test chaos \
    chaos_scenarios_are_deterministic_and_hold_invariants -- --exact >/dev/null
done
if ! cmp -s "$chaos_a" "$chaos_b"; then
  echo "FAIL: chaos event traces diverged between two runs of the same seeds:" >&2
  diff "$chaos_a" "$chaos_b" | head -20 >&2
  exit 1
fi
[ -s "$chaos_a" ] || { echo "FAIL: chaos trace dump is empty" >&2; exit 1; }
echo "ok: $(wc -l <"$chaos_a") trace lines, byte-identical across independent runs"

echo "== server smoke test (serve + scripted client session) =="
serve_log="$(mktemp)"
./target/release/sit serve --addr 127.0.0.1:0 >"$serve_log" &
serve_pid=$!
cleanup_server() {
  kill "$serve_pid" 2>/dev/null || true
  rm -f "$serve_log" "$meta_json" "$trace_json" "$chaos_a" "$chaos_b"
}
trap cleanup_server EXIT

# The server prints `listening on 127.0.0.1:PORT` once bound.
port=""
for _ in $(seq 1 50); do
  port="$(sed -n 's/^listening on 127\.0\.0\.1://p' "$serve_log" || true)"
  [ -n "$port" ] && break
  sleep 0.1
done
[ -n "$port" ] || { echo "FAIL: server never reported its port" >&2; exit 1; }

smoke_out="$(./target/release/sit client "127.0.0.1:$port" <<'REQS'
{"op":"ping"}
{"op":"load","script":"schema s1 { entity Student { Name: char key; } }\nschema s2 { entity Pupil { Name: char key; } }\nequiv s1.Student.Name = s2.Pupil.Name;\nassert s1.Student equals s2.Pupil;"}
{"op":"integrate","session":"1","a":"s1","b":"s2"}
{"op":"stats"}
{"op":"metrics_text"}
{"op":"shutdown"}
REQS
)"
echo "$smoke_out" | sed 's/^/  /'
echo "$smoke_out" | grep -q '"pong":true' \
  || { echo "FAIL: no pong from server" >&2; exit 1; }
echo "$smoke_out" | grep -q '"ok":true,"schema":' \
  || { echo "FAIL: integrate over the wire failed" >&2; exit 1; }
echo "$smoke_out" | grep -q 'sit_requests_total' \
  || { echo "FAIL: metrics_text exposition missing over the wire" >&2; exit 1; }
echo "$smoke_out" | grep -q '"draining":true' \
  || { echo "FAIL: shutdown not acknowledged" >&2; exit 1; }

# Graceful shutdown: the process must exit on its own (drained), not be
# killed by the trap.
for _ in $(seq 1 50); do
  kill -0 "$serve_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$serve_pid" 2>/dev/null; then
  echo "FAIL: server still running after shutdown request" >&2
  exit 1
fi
wait "$serve_pid" 2>/dev/null || true
echo "ok: server served the scripted session and drained cleanly"

echo "== crash-recovery smoke (kill -9 a durable server, restart, diff saves) =="
persist_dir="$(mktemp -d)"
crash_log="$(mktemp)"
crash_pid=""
cleanup_crash() {
  [ -n "$crash_pid" ] && kill -9 "$crash_pid" 2>/dev/null || true
  rm -rf "$persist_dir"
  rm -f "$crash_log"
  cleanup_server
}
trap cleanup_crash EXIT

start_durable() {
  : >"$crash_log"
  ./target/release/sit serve --addr 127.0.0.1:0 --data-dir "$persist_dir" \
    --fsync always --snapshot-every 4 >"$crash_log" &
  crash_pid=$!
  crash_port=""
  for _ in $(seq 1 50); do
    crash_port="$(sed -n 's/^listening on 127\.0\.0\.1://p' "$crash_log" || true)"
    [ -n "$crash_port" ] && break
    sleep 0.1
  done
  [ -n "$crash_port" ] || { echo "FAIL: durable server never reported its port" >&2; exit 1; }
}

start_durable
before="$(./target/release/sit client "127.0.0.1:$crash_port" <<'REQS'
{"op":"open"}
{"op":"add_schema","session":"1","ddl":"schema s1 { entity Student { Name: char key; } }"}
{"op":"add_schema","session":"1","ddl":"schema s2 { entity Pupil { Name: char key; } }"}
{"op":"equiv","session":"1","a":"s1.Student.Name","b":"s2.Pupil.Name"}
{"op":"assert","session":"1","a":"s1.Student","b":"s2.Pupil","assertion":"equals"}
{"op":"save","session":"1"}
REQS
)"
echo "$before" | grep -q '"ok":false' \
  && { echo "FAIL: durable session setup rejected a request" >&2; exit 1; }
before_save="$(echo "$before" | tail -n 1)"

# Die with no chance to flush or say goodbye; every frame above was
# acknowledged under --fsync always, so nothing acknowledged may be lost.
# (The brace group keeps bash's "Killed" job notice out of the output.)
{ kill -9 "$crash_pid" && wait "$crash_pid"; } 2>/dev/null || true
crash_pid=""

start_durable
after="$(printf '%s\n' \
  '{"op":"save","session":"1"}' \
  '{"op":"persist_stats"}' \
  '{"op":"shutdown"}' \
  | ./target/release/sit client "127.0.0.1:$crash_port")"
after_save="$(echo "$after" | head -n 1)"
if [ "$before_save" != "$after_save" ]; then
  echo "FAIL: recovered session does not save byte-identically after kill -9:" >&2
  echo "  before: $before_save" >&2
  echo "  after:  $after_save" >&2
  exit 1
fi
echo "$after" | grep -q '"enabled":true' \
  || { echo "FAIL: persist_stats does not report persistence enabled" >&2; exit 1; }
for _ in $(seq 1 50); do
  kill -0 "$crash_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$crash_pid" 2>/dev/null; then
  echo "FAIL: recovered server still running after shutdown request" >&2
  exit 1
fi
wait "$crash_pid" 2>/dev/null || true
crash_pid=""
echo "ok: acknowledged state survived kill -9 byte-for-byte"

echo "== verify OK =="
