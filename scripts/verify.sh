#!/usr/bin/env bash
# Tier-1 verification: the workspace must build, test, and resolve its
# dependency graph fully offline (no registry crates at all).
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo build --release (offline) =="
cargo build --release --workspace --all-targets

echo "== cargo test -q (offline) =="
cargo test -q --workspace

echo "== dependency graph is sit-* only =="
# Every package in the resolved graph must come from this workspace
# (path sources named sit-*); any registry+/git+ source is a failure.
meta_json="$(mktemp)"
trap 'rm -f "$meta_json"' EXIT
cargo metadata --format-version 1 --locked >"$meta_json"
python3 - "$meta_json" <<'EOF'
import json, sys

with open(sys.argv[1]) as fh:
    meta = json.load(fh)
bad = []
for pkg in meta["packages"]:
    if pkg["source"] is not None or not pkg["name"].startswith("sit"):
        bad.append(f'{pkg["name"]} {pkg["version"]} (source: {pkg["source"]})')
if bad:
    print("non-workspace crates in dependency graph:", file=sys.stderr)
    for line in bad:
        print(f"  {line}", file=sys.stderr)
    sys.exit(1)
names = sorted(p["name"] for p in meta["packages"])
print(f"ok: {len(names)} workspace crates, no external deps: {', '.join(names)}")
EOF

echo "== verify OK =="
